#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "sam/sam_model.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"

namespace sam {
class BatchedProgressiveEstimator;
class ThreadPool;
namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs
}  // namespace sam

namespace sam::serve {

/// \brief Configuration of the serve daemon.
struct ServeOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via `port()`).
  int port = 0;
  /// Bounded request queue between readers and the dispatcher. When full,
  /// new requests are shed immediately with an "overloaded" error instead of
  /// stalling the connection.
  size_t queue_capacity = 256;
  /// Max requests the dispatcher coalesces into one executor call. 1 turns
  /// cross-client batching off (the one-request-per-call baseline that
  /// `bench_serve` compares against).
  size_t batch_max = 64;
  /// Executor worker threads for coalesced cardinality batches (0 =
  /// hardware concurrency).
  size_t worker_threads = 0;
  /// Compiled-plan LRU capacity (0 disables plan caching).
  size_t plan_cache_capacity = 256;
  /// Max time a request may wait in the queue before it is answered with a
  /// timeout error (0 = no timeout).
  int64_t request_timeout_ms = 30000;
  /// Max time a response write may block on one connection before the
  /// connection is dropped (0 = block forever). A client that stops reading
  /// must not be able to stall the dispatcher — and every other client —
  /// behind a full TCP send buffer.
  int64_t write_timeout_ms = 5000;
  /// Finished generation jobs retained for `generate_status` polling; older
  /// completed jobs are pruned when a new job starts.
  size_t finished_jobs_keep = 64;
  /// Progressive-sampling paths for model estimates when the request does
  /// not specify `paths` (matches the CLI estimate default).
  size_t estimate_paths_default = 400;
  /// Benchmark baseline: answer each true-cardinality request with its own
  /// `Executor::ParallelCardinality` call (per-call pool construction and
  /// query compilation, no coalescing, no plan cache) — the pre-daemon batch
  /// API invoked once per request. `bench_serve` measures the serve fast
  /// path against this.
  bool per_request_executor = false;

  /// Model artifact to watch for hot-swap. When set together with
  /// `watch_interval_ms` and `reload_model`, a watcher thread polls the
  /// file's mtime and swaps in a freshly loaded model without dropping
  /// requests: the reload is staged off to the side and applied atomically
  /// only on success, and in-flight requests keep the snapshot they started
  /// with.
  std::string model_path;
  int64_t watch_interval_ms = 0;
  std::function<Result<std::shared_ptr<const SamModel>>()> reload_model;
};

/// \brief Always-on estimation/generation daemon.
///
/// Owns the listening socket and four kinds of threads: an accept loop, one
/// reader per connection, a dispatcher that drains the bounded request queue
/// and coalesces cardinality work across clients into single
/// `Executor::ParallelCardinalityCompiled` calls, and (optionally) a
/// model-file watcher for zero-downtime hot swap. `Stop()` drains
/// gracefully: accepted requests are answered before the socket closes.
///
/// The database, executor and model are loaded once at construction and
/// shared by every request; per-request state is confined to scratch
/// buffers, so concurrent clients see answers bit-identical to the batch
/// CLI paths.
class SamServer {
 public:
  /// `db` and `exec` must outlive the server; `model` is shared (hot swaps
  /// replace the pointer, never mutate the pointee).
  SamServer(const Database* db, const Executor* exec,
            std::shared_ptr<const SamModel> model, ServeOptions options);
  ~SamServer();

  SamServer(const SamServer&) = delete;
  SamServer& operator=(const SamServer&) = delete;

  /// Binds, listens and launches the service threads.
  Status Start();

  /// Graceful drain: stops accepting, answers every already-read request,
  /// stops generation jobs at their next durable step, then joins all
  /// threads and closes every connection. Idempotent.
  void Stop();

  /// Bound port (valid after Start; resolves ephemeral binds).
  int port() const { return port_; }

  /// Atomically replaces the served model. In-flight requests finish on the
  /// snapshot they took; later requests see the new model.
  void SwapModel(std::shared_ptr<const SamModel> model);

  /// Serve-side counters/gauges as one JSON object (also the payload of the
  /// "stats" request).
  std::string StatsJson() const;

  /// Lifetime count of completed model hot-swaps (tests).
  uint64_t model_swaps() const {
    return model_swaps_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  struct Pending;
  struct GenJob;

  /// A connection and the thread reading it; reaped by the accept loop once
  /// the reader has finished.
  struct Reader {
    std::shared_ptr<Conn> conn;
    std::thread thread;
  };

  /// Dispatcher responses for one batch, coalesced per connection so each
  /// client gets one send() per dispatch round instead of one per request.
  struct ResponseSink {
    std::vector<std::pair<std::shared_ptr<Conn>, std::string>> by_conn;
    void Append(const std::shared_ptr<Conn>& conn, const std::string& line);
  };

  std::shared_ptr<const SamModel> ModelSnapshot() const;
  void WriteLine(Conn* conn, const std::string& line);
  /// Deadline-bounded write of already-framed (newline-terminated) bytes.
  void WriteFramed(Conn* conn, const std::string& framed);
  void Respond(Pending* p, const std::string& line, bool is_error);
  /// Batched Respond: records metrics now, buffers the line in `sink` (one
  /// write per connection when the dispatch round flushes).
  void RespondBatched(ResponseSink* sink, Pending* p, const std::string& line,
                      bool is_error);
  /// Response bookkeeping shared by the immediate and batched paths.
  void CountResponse(const Pending& p, bool is_error);

  void AcceptLoop();
  /// Joins and discards readers whose connection has finished (accept-loop
  /// janitor; keeps a long-lived daemon from accumulating dead threads).
  void ReapFinishedReaders();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void DispatchLoop();
  void WatchLoop();

  /// Handles one raw request line from `conn` (parse, fast-path or enqueue).
  void HandleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  void DispatchBatch(std::vector<Pending>* batch);
  /// Coalesces every still-unanswered model-estimate request in `live` into
  /// one `BatchedProgressiveEstimator` call on the persistent pool (or runs
  /// the pre-batching per-request baseline under `per_request_executor`).
  void DispatchModelEstimates(ResponseSink* sink,
                              const std::vector<Pending*>& live);

  std::string HandleGenerate(const Request& req, bool* is_error);
  std::string HandleGenerateStatus(const Request& req, bool* is_error);

  const Database* db_;
  const Executor* exec_;
  ServeOptions options_;

  mutable std::mutex model_mu_;
  std::shared_ptr<const SamModel> model_;

  PlanCache plan_cache_;
  std::unique_ptr<ThreadPool> pool_;

  /// Cached cross-query batched estimator, dispatcher-thread only. Rebuilt
  /// when a hot-swap changes the model snapshot; otherwise its block scratch
  /// (SamplerStates) persists across dispatch rounds, so serving model
  /// estimates allocates nothing per request. `model_estimator_for_` keeps
  /// the snapshot the estimator points into alive.
  std::unique_ptr<BatchedProgressiveEstimator> model_estimator_;
  std::shared_ptr<const SamModel> model_estimator_for_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread watch_thread_;
  std::mutex conns_mu_;
  std::vector<Reader> readers_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  mutable std::mutex jobs_mu_;
  int64_t next_job_id_ = 1;
  std::map<int64_t, std::shared_ptr<GenJob>> jobs_;

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> responses_total_{0};
  std::atomic<uint64_t> errors_total_{0};
  std::atomic<uint64_t> batches_total_{0};
  std::atomic<uint64_t> model_batches_total_{0};
  std::atomic<uint64_t> model_swaps_{0};

  // Registry handles resolved once (registry pointers are process-lifetime
  // stable); the per-request paths must not pay a name lookup per event.
  obs::Counter* requests_counter_;
  obs::Counter* responses_counter_;
  obs::Counter* errors_counter_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* latency_hist_;
  obs::Histogram* batch_size_hist_;
  obs::Histogram* model_batch_size_hist_;
};

}  // namespace sam::serve
