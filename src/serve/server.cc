#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "ar/batched_estimator.h"
#include "ar/estimator.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "sam/generation_pipeline.h"

namespace sam::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// mtime with nanosecond resolution, or -1 when the file is unreadable.
int64_t FileMtimeNs(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

}  // namespace

/// One accepted TCP connection. The reader thread owns reads; responses can
/// come from the reader (fast-path/errors) or the dispatcher, so writes are
/// serialised by `write_mu` to keep response lines intact.
struct SamServer::Conn {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};
  /// Set by the reader thread as its very last action; once true the thread
  /// is join-able without blocking, so the accept loop can reap it.
  std::atomic<bool> reader_done{false};

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

/// A parsed request waiting in the dispatcher queue.
struct SamServer::Pending {
  std::shared_ptr<Conn> conn;
  Request request;
  Clock::time_point arrival;
};

/// One asynchronous generation job (at most one runs at a time — the
/// pipeline's work directory and memory budget are per-run resources).
struct SamServer::GenJob {
  int64_t id = -1;
  std::atomic<bool> stop{false};
  std::thread thread;

  std::mutex mu;
  JobStatus status;  // Guarded by mu.
};

SamServer::SamServer(const Database* db, const Executor* exec,
                     std::shared_ptr<const SamModel> model,
                     ServeOptions options)
    : db_(db),
      exec_(exec),
      options_(std::move(options)),
      model_(std::move(model)),
      plan_cache_(options_.plan_cache_capacity) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  requests_counter_ = reg.GetCounter("sam.serve.requests");
  responses_counter_ = reg.GetCounter("sam.serve.responses");
  errors_counter_ = reg.GetCounter("sam.serve.errors");
  queue_depth_gauge_ = reg.GetGauge("sam.serve.queue_depth");
  latency_hist_ = reg.GetHistogram("sam.serve.latency_ms");
  batch_size_hist_ = reg.GetHistogram("sam.serve.batch_size");
  model_batch_size_hist_ = reg.GetHistogram("sam.serve.model_batch_size");
}

SamServer::~SamServer() { Stop(); }

std::shared_ptr<const SamModel> SamServer::ModelSnapshot() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

void SamServer::SwapModel(std::shared_ptr<const SamModel> model) {
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    model_ = std::move(model);
  }
  model_swaps_.fetch_add(1, std::memory_order_relaxed);
}

Status SamServer::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  if (!options_.model_path.empty() && options_.watch_interval_ms > 0 &&
      options_.reload_model) {
    watch_thread_ = std::thread([this] { WatchLoop(); });
  }
  return Status::OK();
}

void SamServer::Stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) return;  // A previous Stop ran the drain.

  // 1. Stop accepting and reading: after this, the request set is frozen.
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Reader& r : readers_) {
      if (r.thread.joinable()) r.thread.join();
    }
  }

  // 2. Drain: the dispatcher exits only once the queue is empty.
  queue_cv_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // 3. Stop background work.
  if (watch_thread_.joinable()) watch_thread_.join();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) {
      (void)id;
      job->stop.store(true);
    }
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->thread.joinable()) job->thread.join();
    }
  }

  // 4. Close connections (flushed responses only — writes all happened on
  // the threads joined above).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void SamServer::AcceptLoop() {
  while (!stopping_.load()) {
    ReapFinishedReaders();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking: reads and writes both go through poll() with deadlines,
    // so one stuck peer can never park a server thread inside a syscall.
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers_.push_back(Reader{conn, std::thread()});
    readers_.back().thread = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void SamServer::ReapFinishedReaders() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (size_t i = 0; i < readers_.size();) {
    if (readers_[i].conn->reader_done.load()) {
      if (readers_[i].thread.joinable()) readers_[i].thread.join();
      if (i + 1 < readers_.size()) readers_[i] = std::move(readers_.back());
      readers_.pop_back();
    } else {
      ++i;
    }
  }
}

void SamServer::ReaderLoop(std::shared_ptr<Conn> conn) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load() && conn->open.load()) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0) continue;
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;  // The socket is non-blocking; poll raced with the peer.
    }
    if (n <= 0) {
      conn->open.store(false);
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) HandleLine(conn, line);
    }
    buffer.erase(0, start);
  }
  conn->reader_done.store(true);  // Last action: the thread is now reapable.
}

void SamServer::WriteLine(Conn* conn, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  WriteFramed(conn, framed);
}

void SamServer::WriteFramed(Conn* conn, const std::string& framed) {
  if (conn == nullptr || !conn->open.load()) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // Deadline-bounded write on a non-blocking socket: a client that stops
  // reading (full TCP send buffer) is dropped after write_timeout_ms instead
  // of parking the dispatcher — and every other client's responses — inside
  // a blocking send().
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.write_timeout_ms);
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(conn->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      const auto left = options_.write_timeout_ms <= 0
                            ? std::chrono::milliseconds(100)
                            : std::chrono::duration_cast<
                                  std::chrono::milliseconds>(deadline -
                                                             Clock::now());
      if (options_.write_timeout_ms > 0 && left.count() <= 0) {
        conn->open.store(false);  // Slow consumer: drop, don't stall.
        return;
      }
      pollfd pfd{conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1,
             static_cast<int>(std::min<int64_t>(left.count(), 100)));
      continue;
    }
    conn->open.store(false);
    return;
  }
}

void SamServer::CountResponse(const Pending& p, bool is_error) {
  responses_total_.fetch_add(1, std::memory_order_relaxed);
  responses_counter_->Add(1);
  if (is_error) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    errors_counter_->Add(1);
  }
  latency_hist_->Observe(MsSince(p.arrival));
}

void SamServer::Respond(Pending* p, const std::string& line, bool is_error) {
  WriteLine(p->conn.get(), line);
  CountResponse(*p, is_error);
}

void SamServer::ResponseSink::Append(const std::shared_ptr<Conn>& conn,
                                     const std::string& line) {
  for (auto& [c, buf] : by_conn) {
    if (c == conn) {
      buf += line;
      buf += '\n';
      return;
    }
  }
  by_conn.emplace_back(conn, line + '\n');
}

void SamServer::RespondBatched(ResponseSink* sink, Pending* p,
                               const std::string& line, bool is_error) {
  sink->Append(p->conn, line);
  CountResponse(*p, is_error);
}

void SamServer::HandleLine(const std::shared_ptr<Conn>& conn,
                           const std::string& line) {
  const Clock::time_point arrival = Clock::now();
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  requests_counter_->Add(1);

  int64_t id = -1;
  auto parsed = ParseRequest(line, &id);
  Pending p{conn, Request{}, arrival};
  if (!parsed.ok()) {
    Respond(&p, ErrorResponse(id, parsed.status()), /*is_error=*/true);
    return;
  }
  p.request = parsed.MoveValue();

  // Fast paths answered on the reader thread: they touch no heavy shared
  // state and must stay responsive while the dispatcher is busy.
  switch (p.request.type) {
    case RequestType::kPing:
      Respond(&p, PongResponse(p.request.id), /*is_error=*/false);
      return;
    case RequestType::kStats:
      Respond(&p, StatsResponse(p.request.id, StatsJson()),
              /*is_error=*/false);
      return;
    case RequestType::kGenerate: {
      bool is_error = false;
      const std::string response = HandleGenerate(p.request, &is_error);
      Respond(&p, response, is_error);
      return;
    }
    case RequestType::kGenerateStatus: {
      bool is_error = false;
      const std::string response = HandleGenerateStatus(p.request, &is_error);
      Respond(&p, response, is_error);
      return;
    }
    case RequestType::kEstimate:
    case RequestType::kEstimateBatch:
      break;
  }

  // Estimates go through the bounded queue to the coalescing dispatcher.
  // The shed response is written OUTSIDE queue_mu_ — a slow shed client must
  // not stall the dispatcher and every other reader behind the queue lock.
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) {
      shed = true;
    } else {
      queue_.push_back(std::move(p));
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  if (shed) {
    Respond(&p,
            ErrorResponse(p.request.id,
                          Status::OutOfRange(
                              "server overloaded: request queue is full")),
            /*is_error=*/true);
    return;
  }
  queue_cv_.notify_one();
}

void SamServer::DispatchLoop() {
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
        return !queue_.empty() || stopping_.load();
      });
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      const size_t take = std::min(queue_.size(),
                                   std::max<size_t>(1, options_.batch_max));
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    batches_total_.fetch_add(1, std::memory_order_relaxed);
    batch_size_hist_->Observe(static_cast<double>(batch.size()));
    DispatchBatch(&batch);
  }
}

void SamServer::DispatchBatch(std::vector<Pending>* batch) {
  // Dispatcher responses are buffered per connection and flushed with one
  // send() per client at the end of the round; on a busy server that turns
  // ~batch_max response syscalls into ~num_clients.
  ResponseSink sink;

  // Shed requests that exceeded their queueing deadline before doing work
  // for them.
  std::vector<Pending*> live;
  for (Pending& p : *batch) {
    const double waited = MsSince(p.arrival);
    if (options_.request_timeout_ms > 0 &&
        waited > static_cast<double>(options_.request_timeout_ms)) {
      RespondBatched(
          &sink, &p,
          ErrorResponse(
              p.request.id,
              Status::OutOfRange(
                  "deadline exceeded: request waited " +
                  std::to_string(static_cast<int64_t>(waited)) +
                  " ms in queue (timeout " +
                  std::to_string(options_.request_timeout_ms) + " ms)")),
          /*is_error=*/true);
      p.conn = nullptr;
      continue;
    }
    live.push_back(&p);
  }

  if (options_.per_request_executor) {
    // Benchmark baseline: the pre-daemon batch API, one call per request.
    for (Pending* p : live) {
      if (p->request.use_model) continue;
      Workload wl(p->request.queries.begin(), p->request.queries.end());
      auto result = exec_->ParallelCardinality(wl, options_.worker_threads);
      if (!result.ok()) {
        Respond(p, ErrorResponse(p->request.id, result.status()),
                /*is_error=*/true);
      } else {
        Respond(p, CardsResponse(p->request.id, result.ValueOrDie()),
                /*is_error=*/false);
      }
      p->conn = nullptr;
    }
  }

  // True-cardinality work across every live request is coalesced into one
  // executor call; plans come from the LRU cache.
  struct Slot {
    Pending* p;
    size_t query_index;
  };
  std::vector<Slot> slots;
  std::vector<std::shared_ptr<const engine::CompiledQuery>> plans;

  for (Pending* p : live) {
    // Skip requests already answered above (per-request-executor baseline
    // and compile failures mark themselves with conn == nullptr) — without
    // this guard the baseline mode executed every request a second time
    // through the coalesced path, discarding the results.
    if (p->conn == nullptr || p->request.use_model) continue;
    bool failed = false;
    const size_t first_slot = slots.size();
    for (size_t qi = 0; qi < p->request.queries.size() && !failed; ++qi) {
      const Query& q = p->request.queries[qi];
      const std::string key = CanonicalQueryKey(q);
      std::shared_ptr<const engine::CompiledQuery> plan = plan_cache_.Get(key);
      if (plan == nullptr) {
        auto compiled =
            engine::CompiledQuery::Compile(*db_, exec_->join_graph(), q);
        if (!compiled.ok()) {
          RespondBatched(&sink, p,
                         ErrorResponse(p->request.id, compiled.status()),
                         /*is_error=*/true);
          p->conn = nullptr;  // Mark answered.
          failed = true;
          break;
        }
        plan = std::make_shared<const engine::CompiledQuery>(
            compiled.MoveValue());
        plan_cache_.Put(key, plan);
      }
      slots.push_back({p, qi});
      plans.push_back(std::move(plan));
    }
    if (failed) {
      slots.resize(first_slot);
      plans.resize(first_slot);
    }
  }

  std::vector<int64_t> cards;
  if (!plans.empty()) {
    std::vector<const engine::CompiledQuery*> raw(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) raw[i] = plans[i].get();
    auto result = exec_->ParallelCardinalityCompiled(raw, pool_.get());
    if (!result.ok()) {
      for (Pending* p : live) {
        if (p->conn == nullptr || p->request.use_model) continue;
        RespondBatched(&sink, p,
                       ErrorResponse(p->request.id, result.status()),
                       /*is_error=*/true);
        p->conn = nullptr;
      }
    } else {
      cards = result.MoveValue();
    }
  }

  // Scatter coalesced cardinalities back to their requests.
  if (!cards.empty()) {
    size_t cursor = 0;
    for (Pending* p : live) {
      if (p->conn == nullptr || p->request.use_model) continue;
      std::vector<int64_t> answer(p->request.queries.size());
      for (size_t qi = 0; qi < answer.size(); ++qi) {
        answer[qi] = cards[cursor + qi];
      }
      cursor += answer.size();
      RespondBatched(&sink, p, CardsResponse(p->request.id, answer),
                     /*is_error=*/false);
      p->conn = nullptr;
    }
  }

  // Model estimates are coalesced across clients as well — one batched
  // progressive-sampling call per round on the persistent pool.
  DispatchModelEstimates(&sink, live);

  // One write per connection for everything this round produced.
  for (auto& [conn, framed] : sink.by_conn) {
    WriteFramed(conn.get(), framed);
  }
}

void SamServer::DispatchModelEstimates(ResponseSink* sink,
                                       const std::vector<Pending*>& live) {
  std::vector<Pending*> wants;
  for (Pending* p : live) {
    if (p->conn != nullptr && p->request.use_model) wants.push_back(p);
  }
  if (wants.empty()) return;

  if (options_.per_request_executor) {
    // Benchmark baseline: the pre-batching serve path — a fresh estimator
    // (and sampler state) per request, queries estimated serially.
    for (Pending* p : wants) {
      const std::shared_ptr<const SamModel> model = ModelSnapshot();
      const size_t paths = p->request.paths > 0
                               ? static_cast<size_t>(p->request.paths)
                               : options_.estimate_paths_default;
      ProgressiveEstimator estimator(model->model(), paths);
      std::vector<double> estimates;
      estimates.reserve(p->request.queries.size());
      Status st = Status::OK();
      for (const Query& q : p->request.queries) {
        auto est = estimator.EstimateCardinality(q);
        if (!est.ok()) {
          st = est.status();
          break;
        }
        estimates.push_back(est.ValueOrDie());
      }
      if (!st.ok()) {
        RespondBatched(sink, p, ErrorResponse(p->request.id, st),
                       /*is_error=*/true);
      } else {
        RespondBatched(sink, p, EstimatesResponse(p->request.id, estimates),
                       /*is_error=*/false);
      }
      p->conn = nullptr;
    }
    return;
  }

  // One model snapshot for the whole round. The cached batched estimator is
  // rebuilt only when a hot-swap changed the snapshot; otherwise its block
  // scratch carries over, so steady-state estimation allocates nothing per
  // request. (The dispatcher is single-threaded — no lock needed.) Answers
  // remain bit-identical to a fresh per-request ProgressiveEstimator with
  // the same paths: the counter-RNG streams and the kernel layer's
  // batch-size invariance make an estimate independent of what other
  // requests were coalesced with it.
  const std::shared_ptr<const SamModel> model = ModelSnapshot();
  if (model_estimator_ == nullptr || model_estimator_for_ != model) {
    model_estimator_ =
        std::make_unique<BatchedProgressiveEstimator>(model->model());
    model_estimator_for_ = model;
  }

  // Compile per request so a bad query fails only its own request, then
  // coalesce the survivors into ONE batched estimation call.
  struct Slot {
    Pending* p;
    size_t first;  ///< Index of the request's first query in `items`.
    size_t count;
  };
  std::vector<Slot> slots;
  std::deque<CompiledQuery> compiled;  // Stable addresses as it grows.
  std::vector<BatchedEstimateItem> items;
  for (Pending* p : wants) {
    const size_t paths = p->request.paths > 0
                             ? static_cast<size_t>(p->request.paths)
                             : options_.estimate_paths_default;
    if (paths == 0) {
      RespondBatched(
          sink, p,
          ErrorResponse(p->request.id,
                        Status::InvalidArgument(
                            "ProgressiveEstimator needs at least one sample "
                            "path")),
          /*is_error=*/true);
      p->conn = nullptr;
      continue;
    }
    const size_t first = items.size();
    bool failed = false;
    for (const Query& q : p->request.queries) {
      auto cq = model->model()->schema().Compile(q);
      if (!cq.ok()) {
        RespondBatched(sink, p, ErrorResponse(p->request.id, cq.status()),
                       /*is_error=*/true);
        p->conn = nullptr;
        failed = true;
        break;
      }
      compiled.push_back(cq.MoveValue());
      items.push_back({&compiled.back(), paths});
    }
    if (failed) {
      items.resize(first);
      continue;
    }
    slots.push_back({p, first, p->request.queries.size()});
  }
  if (slots.empty()) return;

  std::vector<double> estimates;
  if (!items.empty()) {
    model_batches_total_.fetch_add(1, std::memory_order_relaxed);
    model_batch_size_hist_->Observe(static_cast<double>(items.size()));
    auto result = model_estimator_->EstimateCompiledBatch(items, pool_.get());
    if (!result.ok()) {
      for (const Slot& slot : slots) {
        RespondBatched(sink, slot.p,
                       ErrorResponse(slot.p->request.id, result.status()),
                       /*is_error=*/true);
        slot.p->conn = nullptr;
      }
      return;
    }
    estimates = result.MoveValue();
  }

  // Scatter contiguous per-request slices back (a zero-query request gets an
  // empty estimates array, matching the pre-batching behaviour).
  for (const Slot& slot : slots) {
    std::vector<double> answer(
        estimates.begin() + static_cast<ptrdiff_t>(slot.first),
        estimates.begin() + static_cast<ptrdiff_t>(slot.first + slot.count));
    RespondBatched(sink, slot.p,
                   EstimatesResponse(slot.p->request.id, answer),
                   /*is_error=*/false);
    slot.p->conn = nullptr;
  }
}

std::string SamServer::HandleGenerate(const Request& req, bool* is_error) {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  for (const auto& [id, job] : jobs_) {
    (void)id;
    std::lock_guard<std::mutex> jlock(job->mu);
    if (job->status.state == "queued" || job->status.state == "running") {
      *is_error = true;
      return ErrorResponse(
          req.id, Status::AlreadyExists("generation job " +
                                        std::to_string(job->status.job) +
                                        " is already running"));
    }
  }
  // Every retained job is finished (a live one returned above); cap how many
  // stay pollable so an always-on daemon doesn't accumulate them forever.
  while (jobs_.size() >= std::max<size_t>(1, options_.finished_jobs_keep)) {
    auto oldest = jobs_.begin();
    if (oldest->second->thread.joinable()) oldest->second->thread.join();
    jobs_.erase(oldest);
  }
  auto job = std::make_shared<GenJob>();
  job->id = next_job_id_++;
  job->status.job = job->id;
  job->status.state = "queued";
  job->status.out_dir = req.gen_out;
  jobs_[job->id] = job;

  const std::shared_ptr<const SamModel> model = ModelSnapshot();
  GenerationPipelineOptions opts;
  opts.out_dir = req.gen_out;
  opts.work_dir = req.gen_work;
  opts.resume = req.gen_resume;
  opts.stop_flag = &job->stop;
  job->thread = std::thread([job, model, opts] {
    {
      std::lock_guard<std::mutex> jlock(job->mu);
      job->status.state = "running";
    }
    GenerationPipeline pipeline(model.get(), opts);
    auto run = pipeline.Run();
    std::lock_guard<std::mutex> jlock(job->mu);
    if (!run.ok()) {
      job->status.state = "failed";
      job->status.error = run.status().ToString();
      return;
    }
    const GenerationRunSummary& s = run.ValueOrDie();
    job->status.rows_written = s.rows_written;
    job->status.steps_executed = s.steps_executed;
    job->status.steps_total = s.steps_total;
    job->status.state = s.completed ? "done" : "stopped";
  });
  obs::MetricsRegistry::Global().GetCounter("sam.serve.generate_jobs")->Add(1);
  return GenerateStartedResponse(req.id, job->id);
}

std::string SamServer::HandleGenerateStatus(const Request& req,
                                            bool* is_error) {
  std::shared_ptr<GenJob> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(req.job);
    if (it != jobs_.end()) job = it->second;
  }
  if (job == nullptr) {
    *is_error = true;
    return ErrorResponse(req.id, Status::NotFound("no generation job " +
                                                  std::to_string(req.job)));
  }
  std::lock_guard<std::mutex> jlock(job->mu);
  return GenerateStatusResponse(req.id, job->status);
}

void SamServer::WatchLoop() {
  int64_t last_mtime = FileMtimeNs(options_.model_path);
  while (!stopping_.load()) {
    // Sleep in 20ms slices so Stop() is never blocked on a long interval.
    for (int64_t slept = 0;
         slept < options_.watch_interval_ms && !stopping_.load();
         slept += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (stopping_.load()) return;
    const int64_t mtime = FileMtimeNs(options_.model_path);
    if (mtime < 0 || mtime == last_mtime) continue;
    // Stage-then-apply: load the replacement completely off to the side;
    // the swap happens only when the reload succeeded, so a torn or corrupt
    // artifact never reaches a request.
    auto reloaded = options_.reload_model();
    if (!reloaded.ok()) {
      obs::MetricsRegistry::Global()
          .GetCounter("sam.serve.model_reload_errors")
          ->Add(1);
      // Keep last_mtime unchanged so the next tick retries (the writer may
      // still have been mid-rename).
      continue;
    }
    last_mtime = mtime;
    SwapModel(reloaded.MoveValue());
    obs::MetricsRegistry::Global().GetCounter("sam.serve.model_swaps")->Add(1);
  }
}

std::string SamServer::StatsJson() const {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  size_t jobs_running = 0;
  size_t jobs_total = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_total = jobs_.size();
    for (const auto& [id, job] : jobs_) {
      (void)id;
      std::lock_guard<std::mutex> jlock(job->mu);
      if (job->status.state == "queued" || job->status.state == "running") {
        ++jobs_running;
      }
    }
  }
  const obs::Histogram::Snapshot lat = obs::MetricsRegistry::Global()
                                           .GetHistogram("sam.serve.latency_ms")
                                           ->Snap();
  char lat_buf[160];
  std::snprintf(lat_buf, sizeof(lat_buf),
                "{\"count\": %llu, \"p50\": %.6g, \"p99\": %.6g}",
                static_cast<unsigned long long>(lat.count),
                lat.Percentile(0.5), lat.Percentile(0.99));
  return "{\"queue_depth\": " + std::to_string(depth) +
         ", \"requests\": " + std::to_string(requests_total_.load()) +
         ", \"responses\": " + std::to_string(responses_total_.load()) +
         ", \"errors\": " + std::to_string(errors_total_.load()) +
         ", \"batches\": " + std::to_string(batches_total_.load()) +
         ", \"model_batches\": " + std::to_string(model_batches_total_.load()) +
         ", \"plan_cache\": {\"hits\": " + std::to_string(plan_cache_.hits()) +
         ", \"misses\": " + std::to_string(plan_cache_.misses()) +
         ", \"size\": " + std::to_string(plan_cache_.size()) + "}" +
         ", \"model_swaps\": " + std::to_string(model_swaps_.load()) +
         ", \"jobs\": {\"running\": " + std::to_string(jobs_running) +
         ", \"total\": " + std::to_string(jobs_total) + "}" +
         ", \"latency_ms\": " + lat_buf + "}";
}

}  // namespace sam::serve
