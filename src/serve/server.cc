#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "ar/estimator.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "sam/generation_pipeline.h"

namespace sam::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// mtime with nanosecond resolution, or -1 when the file is unreadable.
int64_t FileMtimeNs(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

}  // namespace

/// One accepted TCP connection. The reader thread owns reads; responses can
/// come from the reader (fast-path/errors) or the dispatcher, so writes are
/// serialised by `write_mu` to keep response lines intact.
struct SamServer::Conn {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

/// A parsed request waiting in the dispatcher queue.
struct SamServer::Pending {
  std::shared_ptr<Conn> conn;
  Request request;
  Clock::time_point arrival;
};

/// One asynchronous generation job (at most one runs at a time — the
/// pipeline's work directory and memory budget are per-run resources).
struct SamServer::GenJob {
  int64_t id = -1;
  std::atomic<bool> stop{false};
  std::thread thread;

  std::mutex mu;
  JobStatus status;  // Guarded by mu.
};

SamServer::SamServer(const Database* db, const Executor* exec,
                     std::shared_ptr<const SamModel> model,
                     ServeOptions options)
    : db_(db),
      exec_(exec),
      options_(std::move(options)),
      model_(std::move(model)),
      plan_cache_(options_.plan_cache_capacity) {}

SamServer::~SamServer() { Stop(); }

std::shared_ptr<const SamModel> SamServer::ModelSnapshot() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

void SamServer::SwapModel(std::shared_ptr<const SamModel> model) {
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    model_ = std::move(model);
  }
  model_swaps_.fetch_add(1, std::memory_order_relaxed);
}

Status SamServer::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  if (!options_.model_path.empty() && options_.watch_interval_ms > 0 &&
      options_.reload_model) {
    watch_thread_ = std::thread([this] { WatchLoop(); });
  }
  return Status::OK();
}

void SamServer::Stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) return;  // A previous Stop ran the drain.

  // 1. Stop accepting and reading: after this, the request set is frozen.
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::thread& t : reader_threads_) {
      if (t.joinable()) t.join();
    }
  }

  // 2. Drain: the dispatcher exits only once the queue is empty.
  queue_cv_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // 3. Stop background work.
  if (watch_thread_.joinable()) watch_thread_.join();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [id, job] : jobs_) {
      (void)id;
      job->stop.store(true);
    }
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->thread.joinable()) job->thread.join();
    }
  }

  // 4. Close connections (flushed responses only — writes all happened on
  // the threads joined above).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void SamServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void SamServer::ReaderLoop(std::shared_ptr<Conn> conn) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load() && conn->open.load()) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0) continue;
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      conn->open.store(false);
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) HandleLine(conn, line);
    }
    buffer.erase(0, start);
  }
}

void SamServer::WriteLine(Conn* conn, const std::string& line) {
  if (!conn->open.load()) return;
  std::string framed = line;
  framed += '\n';
  std::lock_guard<std::mutex> lock(conn->write_mu);
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(conn->fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      conn->open.store(false);
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void SamServer::Respond(Pending* p, const std::string& line, bool is_error) {
  WriteLine(p->conn.get(), line);
  responses_total_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Global().GetCounter("sam.serve.responses")->Add(1);
  if (is_error) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global().GetCounter("sam.serve.errors")->Add(1);
  }
  obs::MetricsRegistry::Global()
      .GetHistogram("sam.serve.latency_ms")
      ->Observe(MsSince(p->arrival));
}

void SamServer::HandleLine(const std::shared_ptr<Conn>& conn,
                           const std::string& line) {
  const Clock::time_point arrival = Clock::now();
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Global().GetCounter("sam.serve.requests")->Add(1);

  int64_t id = -1;
  auto parsed = ParseRequest(line, &id);
  Pending p{conn, Request{}, arrival};
  if (!parsed.ok()) {
    Respond(&p, ErrorResponse(id, parsed.status()), /*is_error=*/true);
    return;
  }
  p.request = parsed.MoveValue();

  // Fast paths answered on the reader thread: they touch no heavy shared
  // state and must stay responsive while the dispatcher is busy.
  switch (p.request.type) {
    case RequestType::kPing:
      Respond(&p, PongResponse(p.request.id), /*is_error=*/false);
      return;
    case RequestType::kStats:
      Respond(&p, StatsResponse(p.request.id, StatsJson()),
              /*is_error=*/false);
      return;
    case RequestType::kGenerate:
      Respond(&p, HandleGenerate(p.request), /*is_error=*/false);
      return;
    case RequestType::kGenerateStatus:
      Respond(&p, HandleGenerateStatus(p.request), /*is_error=*/false);
      return;
    case RequestType::kEstimate:
    case RequestType::kEstimateBatch:
      break;
  }

  // Estimates go through the bounded queue to the coalescing dispatcher.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) {
      Respond(&p,
              ErrorResponse(p.request.id,
                            Status::OutOfRange(
                                "server overloaded: request queue is full")),
              /*is_error=*/true);
      return;
    }
    queue_.push_back(std::move(p));
    obs::MetricsRegistry::Global()
        .GetGauge("sam.serve.queue_depth")
        ->Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
}

void SamServer::DispatchLoop() {
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
        return !queue_.empty() || stopping_.load();
      });
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      const size_t take = std::min(queue_.size(),
                                   std::max<size_t>(1, options_.batch_max));
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      obs::MetricsRegistry::Global()
          .GetGauge("sam.serve.queue_depth")
          ->Set(static_cast<double>(queue_.size()));
    }
    batches_total_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetHistogram("sam.serve.batch_size")
        ->Observe(static_cast<double>(batch.size()));
    DispatchBatch(&batch);
  }
}

void SamServer::DispatchBatch(std::vector<Pending>* batch) {
  // Shed requests that exceeded their queueing deadline before doing work
  // for them.
  std::vector<Pending*> live;
  for (Pending& p : *batch) {
    const double waited = MsSince(p.arrival);
    if (options_.request_timeout_ms > 0 &&
        waited > static_cast<double>(options_.request_timeout_ms)) {
      Respond(&p,
              ErrorResponse(
                  p.request.id,
                  Status::OutOfRange(
                      "deadline exceeded: request waited " +
                      std::to_string(static_cast<int64_t>(waited)) +
                      " ms in queue (timeout " +
                      std::to_string(options_.request_timeout_ms) + " ms)")),
              /*is_error=*/true);
      continue;
    }
    live.push_back(&p);
  }

  if (options_.per_request_executor) {
    // Benchmark baseline: the pre-daemon batch API, one call per request.
    for (Pending* p : live) {
      if (p->request.use_model) continue;
      Workload wl(p->request.queries.begin(), p->request.queries.end());
      auto result = exec_->ParallelCardinality(wl, options_.worker_threads);
      if (!result.ok()) {
        Respond(p, ErrorResponse(p->request.id, result.status()),
                /*is_error=*/true);
      } else {
        Respond(p, CardsResponse(p->request.id, result.ValueOrDie()),
                /*is_error=*/false);
      }
      p->conn = nullptr;
    }
  }

  // True-cardinality work across every live request is coalesced into one
  // executor call; plans come from the LRU cache.
  struct Slot {
    Pending* p;
    size_t query_index;
  };
  std::vector<Slot> slots;
  std::vector<std::shared_ptr<const engine::CompiledQuery>> plans;

  for (Pending* p : live) {
    if (p->request.use_model) continue;
    bool failed = false;
    const size_t first_slot = slots.size();
    for (size_t qi = 0; qi < p->request.queries.size() && !failed; ++qi) {
      const Query& q = p->request.queries[qi];
      const std::string key = CanonicalQueryKey(q);
      std::shared_ptr<const engine::CompiledQuery> plan = plan_cache_.Get(key);
      if (plan == nullptr) {
        auto compiled =
            engine::CompiledQuery::Compile(*db_, exec_->join_graph(), q);
        if (!compiled.ok()) {
          Respond(p, ErrorResponse(p->request.id, compiled.status()),
                  /*is_error=*/true);
          p->conn = nullptr;  // Mark answered.
          failed = true;
          break;
        }
        plan = std::make_shared<const engine::CompiledQuery>(
            compiled.MoveValue());
        plan_cache_.Put(key, plan);
      }
      slots.push_back({p, qi});
      plans.push_back(std::move(plan));
    }
    if (failed) {
      slots.resize(first_slot);
      plans.resize(first_slot);
    }
  }

  std::vector<int64_t> cards;
  if (!plans.empty()) {
    std::vector<const engine::CompiledQuery*> raw(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) raw[i] = plans[i].get();
    auto result = exec_->ParallelCardinalityCompiled(raw, pool_.get());
    if (!result.ok()) {
      for (Pending* p : live) {
        if (p->conn == nullptr || p->request.use_model) continue;
        Respond(p, ErrorResponse(p->request.id, result.status()),
                /*is_error=*/true);
        p->conn = nullptr;
      }
    } else {
      cards = result.MoveValue();
    }
  }

  // Scatter coalesced cardinalities back to their requests.
  if (!cards.empty()) {
    size_t cursor = 0;
    for (Pending* p : live) {
      if (p->conn == nullptr || p->request.use_model) continue;
      std::vector<int64_t> answer(p->request.queries.size());
      for (size_t qi = 0; qi < answer.size(); ++qi) {
        answer[qi] = cards[cursor + qi];
      }
      cursor += answer.size();
      Respond(p, CardsResponse(p->request.id, answer), /*is_error=*/false);
      p->conn = nullptr;
    }
  }

  // Model estimates: each request gets a fresh estimator seeded identically,
  // so an answer depends only on the request itself (and the model snapshot
  // it grabbed) — never on what other clients are doing.
  for (Pending* p : live) {
    if (p->conn == nullptr || !p->request.use_model) continue;
    const std::shared_ptr<const SamModel> model = ModelSnapshot();
    const size_t paths = p->request.paths > 0
                             ? static_cast<size_t>(p->request.paths)
                             : options_.estimate_paths_default;
    ProgressiveEstimator estimator(model->model(), paths);
    std::vector<double> estimates;
    estimates.reserve(p->request.queries.size());
    Status st = Status::OK();
    for (const Query& q : p->request.queries) {
      auto est = estimator.EstimateCardinality(q);
      if (!est.ok()) {
        st = est.status();
        break;
      }
      estimates.push_back(est.ValueOrDie());
    }
    if (!st.ok()) {
      Respond(p, ErrorResponse(p->request.id, st), /*is_error=*/true);
    } else {
      Respond(p, EstimatesResponse(p->request.id, estimates),
              /*is_error=*/false);
    }
    p->conn = nullptr;
  }
}

std::string SamServer::HandleGenerate(const Request& req) {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  for (const auto& [id, job] : jobs_) {
    (void)id;
    std::lock_guard<std::mutex> jlock(job->mu);
    if (job->status.state == "queued" || job->status.state == "running") {
      return ErrorResponse(
          req.id, Status::AlreadyExists("generation job " +
                                        std::to_string(job->status.job) +
                                        " is already running"));
    }
  }
  auto job = std::make_shared<GenJob>();
  job->id = next_job_id_++;
  job->status.job = job->id;
  job->status.state = "queued";
  job->status.out_dir = req.gen_out;
  jobs_[job->id] = job;

  const std::shared_ptr<const SamModel> model = ModelSnapshot();
  GenerationPipelineOptions opts;
  opts.out_dir = req.gen_out;
  opts.work_dir = req.gen_work;
  opts.resume = req.gen_resume;
  opts.stop_flag = &job->stop;
  job->thread = std::thread([job, model, opts] {
    {
      std::lock_guard<std::mutex> jlock(job->mu);
      job->status.state = "running";
    }
    GenerationPipeline pipeline(model.get(), opts);
    auto run = pipeline.Run();
    std::lock_guard<std::mutex> jlock(job->mu);
    if (!run.ok()) {
      job->status.state = "failed";
      job->status.error = run.status().ToString();
      return;
    }
    const GenerationRunSummary& s = run.ValueOrDie();
    job->status.rows_written = s.rows_written;
    job->status.steps_executed = s.steps_executed;
    job->status.steps_total = s.steps_total;
    job->status.state = s.completed ? "done" : "stopped";
  });
  obs::MetricsRegistry::Global().GetCounter("sam.serve.generate_jobs")->Add(1);
  return GenerateStartedResponse(req.id, job->id);
}

std::string SamServer::HandleGenerateStatus(const Request& req) {
  std::shared_ptr<GenJob> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(req.job);
    if (it != jobs_.end()) job = it->second;
  }
  if (job == nullptr) {
    return ErrorResponse(req.id, Status::NotFound("no generation job " +
                                                  std::to_string(req.job)));
  }
  std::lock_guard<std::mutex> jlock(job->mu);
  return GenerateStatusResponse(req.id, job->status);
}

void SamServer::WatchLoop() {
  int64_t last_mtime = FileMtimeNs(options_.model_path);
  while (!stopping_.load()) {
    // Sleep in 20ms slices so Stop() is never blocked on a long interval.
    for (int64_t slept = 0;
         slept < options_.watch_interval_ms && !stopping_.load();
         slept += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (stopping_.load()) return;
    const int64_t mtime = FileMtimeNs(options_.model_path);
    if (mtime < 0 || mtime == last_mtime) continue;
    // Stage-then-apply: load the replacement completely off to the side;
    // the swap happens only when the reload succeeded, so a torn or corrupt
    // artifact never reaches a request.
    auto reloaded = options_.reload_model();
    if (!reloaded.ok()) {
      obs::MetricsRegistry::Global()
          .GetCounter("sam.serve.model_reload_errors")
          ->Add(1);
      // Keep last_mtime unchanged so the next tick retries (the writer may
      // still have been mid-rename).
      continue;
    }
    last_mtime = mtime;
    SwapModel(reloaded.MoveValue());
    obs::MetricsRegistry::Global().GetCounter("sam.serve.model_swaps")->Add(1);
  }
}

std::string SamServer::StatsJson() const {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  size_t jobs_running = 0;
  size_t jobs_total = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_total = jobs_.size();
    for (const auto& [id, job] : jobs_) {
      (void)id;
      std::lock_guard<std::mutex> jlock(job->mu);
      if (job->status.state == "queued" || job->status.state == "running") {
        ++jobs_running;
      }
    }
  }
  const obs::Histogram::Snapshot lat = obs::MetricsRegistry::Global()
                                           .GetHistogram("sam.serve.latency_ms")
                                           ->Snap();
  char lat_buf[160];
  std::snprintf(lat_buf, sizeof(lat_buf),
                "{\"count\": %llu, \"p50\": %.6g, \"p99\": %.6g}",
                static_cast<unsigned long long>(lat.count),
                lat.Percentile(0.5), lat.Percentile(0.99));
  return "{\"queue_depth\": " + std::to_string(depth) +
         ", \"requests\": " + std::to_string(requests_total_.load()) +
         ", \"responses\": " + std::to_string(responses_total_.load()) +
         ", \"errors\": " + std::to_string(errors_total_.load()) +
         ", \"batches\": " + std::to_string(batches_total_.load()) +
         ", \"plan_cache\": {\"hits\": " + std::to_string(plan_cache_.hits()) +
         ", \"misses\": " + std::to_string(plan_cache_.misses()) +
         ", \"size\": " + std::to_string(plan_cache_.size()) + "}" +
         ", \"model_swaps\": " + std::to_string(model_swaps_.load()) +
         ", \"jobs\": {\"running\": " + std::to_string(jobs_running) +
         ", \"total\": " + std::to_string(jobs_total) + "}" +
         ", \"latency_ms\": " + lat_buf + "}";
}

}  // namespace sam::serve
