#include "serve/protocol.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"
#include "workload/io.h"

namespace sam::serve {

namespace {

/// Numbers on the wire: cardinalities as plain integers, estimates with 17
/// significant digits so the double round-trips exactly (the bit-identity
/// contract between served and batch estimates).
std::string NumberToJson(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<int64_t> MemberInt(const obs::JsonValue& obj, const std::string& key,
                          int64_t fallback) {
  const obs::JsonValue* m = obj.Find(key);
  if (m == nullptr) return fallback;
  if (m->type != obs::JsonValue::Type::kNumber) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  return static_cast<int64_t>(m->number_value);
}

Result<std::string> MemberString(const obs::JsonValue& obj,
                                 const std::string& key,
                                 const std::string& fallback) {
  const obs::JsonValue* m = obj.Find(key);
  if (m == nullptr) return fallback;
  if (m->type != obs::JsonValue::Type::kString) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return m->string_value;
}

Result<bool> MemberBool(const obs::JsonValue& obj, const std::string& key,
                        bool fallback) {
  const obs::JsonValue* m = obj.Find(key);
  if (m == nullptr) return fallback;
  if (m->type != obs::JsonValue::Type::kBool) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return m->bool_value;
}

Result<Query> ParseEmbeddedQuery(const std::string& text) {
  auto q = ParseWorkloadQuery(text, /*require_card=*/false);
  if (!q.ok()) {
    return Status::InvalidArgument("bad query '" + text + "': " +
                                   q.status().message());
  }
  return q;
}

Status FillEstimatorFields(const obs::JsonValue& root, Request* req) {
  std::string estimator;
  SAM_ASSIGN_OR_RETURN(estimator, MemberString(root, "estimator", "true"));
  if (estimator == "true") {
    req->use_model = false;
  } else if (estimator == "model") {
    req->use_model = true;
  } else {
    return Status::InvalidArgument(
        "field 'estimator' must be \"true\" or \"model\", got \"" + estimator +
        "\"");
  }
  SAM_ASSIGN_OR_RETURN(req->paths, MemberInt(root, "paths", 0));
  if (req->paths < 0) {
    return Status::InvalidArgument("field 'paths' must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<Request> ParseRequest(const std::string& line, int64_t* id_out) {
  if (id_out != nullptr) *id_out = -1;
  auto parsed = obs::ParseJson(line);
  if (!parsed.ok()) {
    return Status::InvalidArgument("request is not valid JSON: " +
                                   parsed.status().message());
  }
  const obs::JsonValue& root = parsed.ValueOrDie();
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request req;
  SAM_ASSIGN_OR_RETURN(req.id, MemberInt(root, "id", -1));
  if (id_out != nullptr) *id_out = req.id;

  std::string type;
  SAM_ASSIGN_OR_RETURN(type, MemberString(root, "type", ""));
  if (type.empty()) {
    return Status::InvalidArgument("field 'type' is required");
  }

  if (type == "ping") {
    req.type = RequestType::kPing;
    return req;
  }
  if (type == "estimate") {
    req.type = RequestType::kEstimate;
    std::string text;
    SAM_ASSIGN_OR_RETURN(text, MemberString(root, "query", ""));
    if (text.empty()) {
      return Status::InvalidArgument("estimate: field 'query' is required");
    }
    SAM_ASSIGN_OR_RETURN(Query q, ParseEmbeddedQuery(text));
    req.queries.push_back(std::move(q));
    SAM_RETURN_NOT_OK(FillEstimatorFields(root, &req));
    return req;
  }
  if (type == "estimate_batch") {
    req.type = RequestType::kEstimateBatch;
    const obs::JsonValue* arr = root.Find("queries");
    if (arr == nullptr || !arr->is_array()) {
      return Status::InvalidArgument(
          "estimate_batch: field 'queries' must be an array of strings");
    }
    if (arr->array_items.empty()) {
      return Status::InvalidArgument(
          "estimate_batch: field 'queries' must be non-empty");
    }
    for (const obs::JsonValue& item : arr->array_items) {
      if (item.type != obs::JsonValue::Type::kString) {
        return Status::InvalidArgument(
            "estimate_batch: every entry of 'queries' must be a string");
      }
      SAM_ASSIGN_OR_RETURN(Query q, ParseEmbeddedQuery(item.string_value));
      req.queries.push_back(std::move(q));
    }
    SAM_RETURN_NOT_OK(FillEstimatorFields(root, &req));
    return req;
  }
  if (type == "generate") {
    req.type = RequestType::kGenerate;
    SAM_ASSIGN_OR_RETURN(req.gen_out, MemberString(root, "out", ""));
    SAM_ASSIGN_OR_RETURN(req.gen_work, MemberString(root, "work", ""));
    SAM_ASSIGN_OR_RETURN(req.gen_resume, MemberBool(root, "resume", false));
    if (req.gen_out.empty() || req.gen_work.empty()) {
      return Status::InvalidArgument(
          "generate: fields 'out' and 'work' are required");
    }
    return req;
  }
  if (type == "generate_status") {
    req.type = RequestType::kGenerateStatus;
    SAM_ASSIGN_OR_RETURN(req.job, MemberInt(root, "job", -1));
    if (req.job < 0) {
      return Status::InvalidArgument(
          "generate_status: field 'job' is required");
    }
    return req;
  }
  if (type == "stats") {
    req.type = RequestType::kStats;
    return req;
  }
  return Status::InvalidArgument("unknown request type '" + type + "'");
}

std::string ErrorResponse(int64_t id, const Status& status) {
  return "{\"id\": " + std::to_string(id) +
         ", \"ok\": false, \"code\": \"" +
         StatusCodeToString(status.code()) + "\", \"error\": \"" +
         obs::EscapeJson(status.message()) + "\"}";
}

std::string PongResponse(int64_t id) {
  return "{\"id\": " + std::to_string(id) +
         ", \"ok\": true, \"type\": \"pong\"}";
}

std::string CardsResponse(int64_t id, const std::vector<int64_t>& cards) {
  std::string out =
      "{\"id\": " + std::to_string(id) + ", \"ok\": true, \"cards\": [";
  for (size_t i = 0; i < cards.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(cards[i]);
  }
  out += "]}";
  return out;
}

std::string EstimatesResponse(int64_t id, const std::vector<double>& estimates) {
  std::string out =
      "{\"id\": " + std::to_string(id) + ", \"ok\": true, \"estimates\": [";
  for (size_t i = 0; i < estimates.size(); ++i) {
    if (i > 0) out += ", ";
    out += NumberToJson(estimates[i]);
  }
  out += "]}";
  return out;
}

std::string GenerateStartedResponse(int64_t id, int64_t job) {
  return "{\"id\": " + std::to_string(id) + ", \"ok\": true, \"job\": " +
         std::to_string(job) + "}";
}

std::string GenerateStatusResponse(int64_t id, const JobStatus& status) {
  return "{\"id\": " + std::to_string(id) + ", \"ok\": true, \"job\": " +
         std::to_string(status.job) + ", \"state\": \"" +
         obs::EscapeJson(status.state) +
         "\", \"rows\": " + std::to_string(status.rows_written) +
         ", \"steps\": " + std::to_string(status.steps_executed) +
         ", \"steps_total\": " + std::to_string(status.steps_total) +
         ", \"out\": \"" + obs::EscapeJson(status.out_dir) +
         "\", \"error\": \"" + obs::EscapeJson(status.error) + "\"}";
}

std::string StatsResponse(int64_t id, const std::string& stats_object) {
  return "{\"id\": " + std::to_string(id) + ", \"ok\": true, \"stats\": " +
         stats_object + "}";
}

}  // namespace sam::serve
