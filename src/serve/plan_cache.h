#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/compiled_query.h"
#include "query/query.h"

namespace sam::serve {

/// \brief Cache key of a query, invariant under clause order.
///
/// Relations, predicates and IN-lists are sorted before encoding, so two
/// requests that differ only in the order of their conjuncts share one
/// compiled plan. The cardinality label is excluded — it never affects the
/// plan.
std::string CanonicalQueryKey(const Query& q);

/// \brief Mutex-guarded LRU cache of compiled query plans.
///
/// Plans are handed out as shared_ptr-to-const: evaluation against a
/// `CompiledQuery` is thread-safe (state lives in per-thread `EvalScratch`),
/// and the shared_ptr keeps an evicted plan alive until its last in-flight
/// evaluation finishes. Hit/miss counts are relaxed atomics so the stats
/// endpoint can read them without taking the cache lock.
class PlanCache {
 public:
  /// `capacity` = max resident plans (0 disables caching entirely).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached plan for `key`, or nullptr on miss. A hit moves the
  /// entry to the front of the LRU list.
  std::shared_ptr<const engine::CompiledQuery> Get(const std::string& key);

  /// Inserts `plan` under `key`, evicting the least-recently-used entry when
  /// over capacity. Racing inserts of the same key keep the incumbent (both
  /// plans are equivalent; the incumbent may already be referenced).
  void Put(const std::string& key,
           std::shared_ptr<const engine::CompiledQuery> plan);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

 private:
  using LruList =
      std::list<std::pair<std::string,
                          std::shared_ptr<const engine::CompiledQuery>>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace sam::serve
