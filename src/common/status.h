#pragma once

#include <string>
#include <utility>

namespace sam {

/// \brief Error category for a failed operation.
///
/// Mirrors the Arrow/RocksDB convention of returning rich status objects from
/// fallible APIs instead of throwing exceptions across library boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kIOError,
  kInternal,
};

/// \brief Returns a human readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. Use the factory helpers
/// (`Status::InvalidArgument(...)` etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// \brief True if the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// \brief Renders "<Code>: <message>" for logging.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

}  // namespace sam

/// Propagates a non-OK status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define SAM_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::sam::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Aborts the process with a diagnostic if `expr` is not OK. Intended for
/// call sites where failure indicates a programming error.
#define SAM_CHECK_OK(expr)                                                  \
  do {                                                                      \
    ::sam::Status _st = (expr);                                             \
    if (!_st.ok()) {                                                        \
      ::sam::internal::FatalStatus(__FILE__, __LINE__, _st);                \
    }                                                                       \
  } while (false)

namespace sam::internal {
[[noreturn]] void FatalStatus(const char* file, int line, const Status& st);
}  // namespace sam::internal
