#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sam {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  const std::string text(Trim(s));
  if (text.empty()) {
    return Status::InvalidArgument("expected an integer, got empty value");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || end == text.c_str()) {
    return Status::InvalidArgument("'" + text + "' is not a valid integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("'" + text + "' is out of int64 range");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseFloat64(std::string_view s) {
  const std::string text(Trim(s));
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got empty value");
  }
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || end == text.c_str()) {
    return Status::InvalidArgument("'" + text + "' is not a valid number");
  }
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("'" + text + "' is out of double range");
  }
  return v;
}

std::string FormatMetric(double v) {
  char buf[64];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%s", std::isnan(v) ? "nan" : "inf");
  } else if (std::fabs(v) >= 1e5) {
    std::snprintf(buf, sizeof(buf), "%.1e", v);
  } else if (std::fabs(v) >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

std::string PadTo(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

}  // namespace sam
