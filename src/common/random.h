#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace sam {

/// \brief Seeded pseudo-random number generator used across the library.
///
/// Wraps a fixed engine so that every experiment in the repo is reproducible
/// from a single seed. All sampling utilities used by the paper's algorithms
/// (uniform, categorical, Gumbel noise) live here.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5a4db00c) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [0, 1).
  double Uniform() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal sample.
  double Normal() {
    std::normal_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Standard Gumbel(0,1) sample, used by the Gumbel-Softmax trick.
  double Gumbel();

  /// Zipf-like skewed integer in [0, n) with exponent `s`.
  ///
  /// Uses inverse-CDF over a cached normaliser; intended for synthetic data
  /// with realistic skew (e.g. IMDB-like fanouts).
  int64_t Zipf(int64_t n, double s);

  /// Samples an index from an (unnormalised, non-negative) weight vector.
  /// Returns -1 when every weight is zero.
  int64_t Categorical(const std::vector<double>& weights) {
    return Categorical(weights.data(), weights.size());
  }

  /// Pointer form of Categorical: samples directly from `weights[0..n)`
  /// without requiring the caller to copy into a vector first. Hot-loop
  /// callers (FOJ sampling, progressive estimation) pass model probability
  /// rows straight through.
  int64_t Categorical(const double* weights, size_t n);

  /// Bernoulli trial with probability `p`.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  /// \brief Exact engine-state capture for checkpoint/restore.
  ///
  /// The state round-trips losslessly through the engine's standard text
  /// serialisation, so a restored `Rng` produces the identical stream. The
  /// per-call distribution objects above are constructed fresh every call
  /// and therefore carry no state of their own.
  std::string SaveState() const;

  /// Restores a state captured with `SaveState`. Fails with
  /// `InvalidArgument` when the string does not parse as an engine state.
  Status RestoreState(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

// --- Counter-based (stateless) streams --------------------------------------
//
// `Rng` above is sequential: what sample k returns depends on how many
// samples were drawn before it, so two callers sharing an engine perturb each
// other. The progressive-sampling estimators instead need random numbers
// addressable by *coordinates* — (seed, stream, path, column) — so that a
// trajectory draws the same uniforms no matter which call, batch, or thread
// evaluates it. These helpers provide exactly that: a bijective 64-bit mix of
// the coordinates, mapped to a uniform in [0, 1).

/// SplitMix64 finalizer step: a bijective 64-bit mixer with full avalanche
/// (each input bit flips every output bit with probability ~1/2).
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) at coordinates (seed, stream, hi, lo): four
/// chained Mix64 rounds, top 53 bits scaled by 2^-53. Pure function of its
/// arguments — evaluation order and thread schedule cannot change it.
inline double CounterUniform(uint64_t seed, uint64_t stream, uint64_t hi,
                             uint64_t lo) {
  uint64_t h = Mix64(seed);
  h = Mix64(h ^ stream);
  h = Mix64(h ^ hi);
  h = Mix64(h ^ lo);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Samples an index from unnormalised non-negative `weights[0..n)` driven by
/// a caller-supplied uniform `u` in [0, 1). Same subtract-scan and edge
/// semantics as `Rng::Categorical` (returns -1 when the total mass is zero),
/// but stateless — the counter streams' partner for order-independent
/// sampling.
int64_t CategoricalFromUniform(const double* weights, size_t n, double u);

}  // namespace sam
