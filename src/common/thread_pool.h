#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sam {

/// \brief Fixed-size worker pool.
///
/// The paper notes that AR sampling is "embarrassingly parallel"; the
/// generation pipelines shard sample batches across this pool.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (defaults to hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace sam
