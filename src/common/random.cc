#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sam {
namespace {

// Shared subtract-scan so the stateful and counter-driven categorical
// samplers cannot drift: `r` is already scaled by the total mass.
int64_t CategoricalScan(const double* weights, size_t n, double r) {
  for (size_t i = 0; i < n; ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(n) - 1;
}

}  // namespace

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::RestoreState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return Status::InvalidArgument("unparseable RNG state");
  }
  engine_ = restored;
  return Status::OK();
}

double Rng::Gumbel() {
  // -log(-log(U)) with U in (0,1); clamp away from 0 to avoid inf.
  double u = Uniform();
  u = std::max(u, 1e-12);
  return -std::log(-std::log(u));
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 1.0) {
    // Rejection sampler below requires s > 1; fall back to a linear scan over
    // the (unnormalised) CDF, which is fine for the dataset-generator sizes.
    double total = 0.0;
    for (int64_t i = 1; i <= n; ++i) total += std::pow(static_cast<double>(i), -s);
    double r = Uniform() * total;
    for (int64_t i = 1; i <= n; ++i) {
      r -= std::pow(static_cast<double>(i), -s);
      if (r <= 0.0) return i - 1;
    }
    return n - 1;
  }
  // Rejection-free inverse CDF via cumulative weights would be O(n) per call;
  // instead use the standard rejection sampler (Devroye) which is O(1) amortised.
  // For the modest n used by dataset generators a cached CDF would also work,
  // but this keeps the generator stateless w.r.t. n.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    const double u = Uniform();
    const double v = Uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<int64_t>(x) - 1;
    }
  }
}

int64_t Rng::Categorical(const double* weights, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += weights[i];
  if (total <= 0.0) return -1;
  return CategoricalScan(weights, n, Uniform() * total);
}

int64_t CategoricalFromUniform(const double* weights, size_t n, double u) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += weights[i];
  if (total <= 0.0) return -1;
  return CategoricalScan(weights, n, u * total);
}

}  // namespace sam
