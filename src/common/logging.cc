#include "common/logging.h"

#include <atomic>

namespace sam::internal {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetMinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetMinLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_min_level.load() ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace sam::internal
