#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace sam {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {

void FatalStatus(const char* file, int line, const Status& st) {
  std::fprintf(stderr, "[%s:%d] fatal status: %s\n", file, line, st.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace sam
