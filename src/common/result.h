#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sam {

/// \brief Value-or-error return type (Arrow's `arrow::Result`).
///
/// Holds either a `T` or a non-OK `Status`. Accessors assert on misuse; use
/// `ok()` to branch first, or `SAM_ASSIGN_OR_RETURN` to propagate.
template <typename T>
class Result {
 public:
  /// Implicit from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief Borrow the value. Aborts with the error status when not `ok()`
  /// (active in all build types — silently reading an error would be UB).
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(repr_);
  }

  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(repr_);
  }

  /// \brief Move the value out. Aborts with the error status when not `ok()`.
  T MoveValue() {
    CheckOk();
    return std::move(std::get<T>(repr_));
  }

  /// \brief Value if present, otherwise `fallback`.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      internal::FatalStatus("Result", 0, std::get<Status>(repr_));
    }
  }

  std::variant<Status, T> repr_;
};

}  // namespace sam

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define SAM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = tmp.MoveValue()

#define SAM_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define SAM_ASSIGN_OR_RETURN_NAME(a, b) SAM_ASSIGN_OR_RETURN_CAT(a, b)
#define SAM_ASSIGN_OR_RETURN(lhs, expr) \
  SAM_ASSIGN_OR_RETURN_IMPL(SAM_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, expr)
