#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sam {

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins strings with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with sensible scientific/fixed switching for tables,
/// mirroring how the paper reports errors (e.g. "2e+06" vs "1.27").
std::string FormatMetric(double v);

/// Left-pads/truncates to width for fixed-width report tables.
std::string PadTo(std::string s, size_t width);

}  // namespace sam
