#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace sam {

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins strings with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a base-10 signed 64-bit integer from the whole of `s` (surrounding
/// whitespace allowed). Empty input, trailing junk, and out-of-range values
/// all fail with InvalidArgument instead of silently truncating the way a
/// bare strtoll would.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a finite double from the whole of `s` (surrounding whitespace
/// allowed). Empty input, trailing junk, and values that overflow to
/// infinity fail with InvalidArgument.
Result<double> ParseFloat64(std::string_view s);

/// Formats a double with sensible scientific/fixed switching for tables,
/// mirroring how the paper reports errors (e.g. "2e+06" vs "1.27").
std::string FormatMetric(double v);

/// Left-pads/truncates to width for fixed-width report tables.
std::string PadTo(std::string s, size_t width);

}  // namespace sam
