#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics_registry.h"

namespace sam {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(packaged));
    depth = tasks_.size();
  }
  cv_.notify_one();
  if (obs::MetricsEnabled()) {
    static obs::Counter* submitted =
        obs::MetricsRegistry::Global().GetCounter("sam.threadpool.tasks");
    static obs::Gauge* queue_depth =
        obs::MetricsRegistry::Global().GetGauge("sam.threadpool.queue_depth");
    submitted->Add(1);
    queue_depth->Set(static_cast<double>(depth));
  }
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, workers_.size());
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> futs;
  futs.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    futs.push_back(Submit([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const size_t i = next.fetch_add(1);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // Stored in the shard's future; rethrown after the join.
        }
      }
    }));
  }
  // Join every shard before letting any exception escape: `next`, `fn`, and
  // `failed` live on this stack frame, so propagating out of the first
  // faulting future while other shards still run would leave them touching
  // a dead frame. Rethrow the first failure only once all futures are done.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (obs::MetricsEnabled()) {
      static obs::Histogram* task_seconds =
          obs::MetricsRegistry::Global().GetHistogram(
              "sam.threadpool.task_seconds");
      const auto t0 = std::chrono::steady_clock::now();
      task();
      task_seconds->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      task();
    }
  }
}

}  // namespace sam
