#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace sam {

/// \brief Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Minimum level that is emitted; settable via SetLogLevel.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// \brief Stream-style log sink that flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

/// \brief Globally raises/lowers logging verbosity.
inline void SetLogLevel(LogLevel level) { internal::SetMinLogLevel(level); }

}  // namespace sam

#define SAM_LOG(level) \
  ::sam::internal::LogMessage(::sam::LogLevel::k##level, __FILE__, __LINE__)

/// Hard invariant check; aborts with a message when violated. Active in all
/// build types (database-style defensive programming for logic errors).
#define SAM_CHECK(cond)                                                      \
  if (!(cond))                                                               \
  ::sam::internal::LogMessage(::sam::LogLevel::kFatal, __FILE__, __LINE__)   \
      << "Check failed: " #cond " "

#define SAM_CHECK_EQ(a, b) SAM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SAM_CHECK_NE(a, b) SAM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SAM_CHECK_LT(a, b) SAM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SAM_CHECK_LE(a, b) SAM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SAM_CHECK_GT(a, b) SAM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SAM_CHECK_GE(a, b) SAM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
