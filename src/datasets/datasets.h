#pragma once

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace sam {

/// \brief Synthetic stand-ins for the paper's evaluation datasets.
///
/// The paper evaluates on Census (48K x 14), DMV (11.6M x 11) and IMDB with
/// the JOB-light schema (6 relations, FOJ ~ 2e12). The raw datasets are not
/// available offline, so these builders create seeded synthetic databases
/// with matched *shape*: column counts, domain-size ranges, mixed
/// categorical/numerical types, strong attribute correlations, and (for
/// IMDB-like) a snowflake join schema with skewed fanouts and zero-fanout
/// parents. See DESIGN.md §2 for the substitution rationale.

/// \brief Single-relation dataset shaped like Census: `num_rows` x 14
/// columns, mixed categorical and numerical, domain sizes 2..~123, with
/// latent-class correlation structure (income/education/age/hours are
/// strongly dependent).
Database MakeCensusLike(size_t num_rows = 48000, uint64_t seed = 1);

/// \brief Single-relation dataset shaped like DMV: `num_rows` x 11 columns,
/// domain sizes 2..~2101. The paper's 11.6M rows are scaled to a CPU-sized
/// default.
Database MakeDmvLike(size_t num_rows = 100000, uint64_t seed = 2);

/// \brief Multi-relation database shaped like IMDB/JOB-light: root relation
/// `title` plus 5 FK relations (movie_companies, cast_info, movie_info,
/// movie_info_idx, movie_keyword) with Zipf-skewed fanouts and a fraction of
/// titles absent from each child relation (producing NULLs in the FOJ).
Database MakeImdbLike(size_t title_rows = 8000, uint64_t seed = 3);

/// \brief A depth-2 chain schema A -> B -> C (B has both a primary key and a
/// foreign key), exercising the multi-key recursive extension of
/// Group-and-Merge that the paper defers to its full version:
///   A = {(1,m),(2,n)}           with PK A.x
///   B = {(1,1,p),(2,1,q),(3,2,p)} with PK B.y, FK B.x -> A.x
///   C = {(1,u),(1,v),(3,u)}       with FK C.y -> B.y
/// Its full outer join has 4 tuples.
Database MakeChainDatabase();

/// \brief The exact 3-relation database of the paper's Figure 3:
/// A = {(1,m),(2,m),(3,n),(4,n)} with PK A.x; B = {(1,a),(2,b),(2,c)} and
/// C = {(1,i),(1,j),(2,i),(2,j)} with FKs B.x, C.x -> A.x. Its full outer
/// join has 8 tuples; used to validate IPW weights and Group-and-Merge
/// against the worked example.
Database MakeFigure3Database();

}  // namespace sam
