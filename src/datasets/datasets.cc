#include "datasets/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace sam {

namespace {

/// Clamps v into [lo, hi].
int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return std::max(lo, std::min(hi, v));
}

std::string LabelFor(const char* prefix, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s_%03lld", prefix, static_cast<long long>(v));
  return buf;
}

Column IntColumn(const std::string& name, const std::vector<int64_t>& raw) {
  std::vector<Value> values;
  values.reserve(raw.size());
  for (int64_t v : raw) values.emplace_back(v);
  return Column::FromValues(name, ColumnType::kInt, values);
}

Column StringColumn(const std::string& name, const std::vector<std::string>& raw) {
  std::vector<Value> values;
  values.reserve(raw.size());
  for (const auto& v : raw) values.emplace_back(v);
  return Column::FromValues(name, ColumnType::kString, values);
}

}  // namespace

Database MakeCensusLike(size_t num_rows, uint64_t seed) {
  Rng rng(seed);
  const size_t n = num_rows;
  std::vector<int64_t> age(n), education_num(n), marital(n), occupation(n);
  std::vector<int64_t> relationship(n), race(n), sex(n), capital_gain(n);
  std::vector<int64_t> capital_loss(n), hours(n), country(n), income(n);
  std::vector<std::string> workclass(n), education(n);

  for (size_t i = 0; i < n; ++i) {
    // Latent class drives the correlation structure: a cluster loosely
    // corresponds to a socio-economic stratum.
    const int64_t z = rng.UniformInt(0, 7);

    age[i] = Clamp(static_cast<int64_t>(std::llround(rng.Normal(25 + 6.0 * z, 8.0))),
                   17, 90);
    const int64_t edu = Clamp(rng.Zipf(16, 1.3) + (z % 4), 0, 15);
    education[i] = LabelFor("edu", edu);
    education_num[i] = edu + 1;
    workclass[i] = LabelFor("wc", (z + rng.Zipf(9, 1.5)) % 9);
    occupation[i] = (edu + rng.Zipf(15, 1.2)) % 15;
    // Younger people skew single (marital code 4), older skew married (0).
    marital[i] = (age[i] < 25 && rng.Bernoulli(0.8)) ? 4 : rng.Zipf(7, 1.6);
    relationship[i] = (marital[i] + rng.Zipf(6, 1.5)) % 6;
    race[i] = rng.Zipf(5, 1.8);
    sex[i] = rng.Bernoulli(0.52) ? 1 : 0;
    hours[i] = Clamp(
        static_cast<int64_t>(std::llround(rng.Normal(40 + 4.0 * (z % 3), 10.0))), 1,
        99);
    capital_gain[i] =
        rng.Bernoulli(0.9) ? 0 : 500 * (1 + rng.Zipf(120, 1.5));
    capital_loss[i] = rng.Bernoulli(0.95) ? 0 : 100 * (1 + rng.Zipf(98, 1.5));
    // Income is a noisy logistic function of education, hours and age, so a
    // model must capture cross-column correlation to match selectivities.
    const double score = 0.45 * static_cast<double>(education_num[i]) +
                         0.05 * static_cast<double>(hours[i]) +
                         0.02 * static_cast<double>(age[i]) - 6.0 + rng.Normal();
    income[i] = score > 0.0 ? 1 : 0;
    country[i] = rng.Zipf(42, 1.7);
  }

  Table table("census");
  SAM_CHECK_OK(table.AddColumn(IntColumn("age", age)));
  SAM_CHECK_OK(table.AddColumn(StringColumn("workclass", workclass)));
  SAM_CHECK_OK(table.AddColumn(StringColumn("education", education)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("education_num", education_num)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("marital_status", marital)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("occupation", occupation)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("relationship", relationship)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("race", race)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("sex", sex)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("capital_gain", capital_gain)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("capital_loss", capital_loss)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("hours_per_week", hours)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("native_country", country)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("income", income)));

  Database db;
  SAM_CHECK_OK(db.AddTable(std::move(table)));
  return db;
}

Database MakeDmvLike(size_t num_rows, uint64_t seed) {
  Rng rng(seed);
  const size_t n = num_rows;
  std::vector<int64_t> record_type(n), reg_class(n), state(n), county(n);
  std::vector<int64_t> body_type(n), fuel_type(n), color(n), valid_date(n);
  std::vector<int64_t> scofflaw(n), suspension(n), revocation(n);

  for (size_t i = 0; i < n; ++i) {
    const int64_t z = rng.UniformInt(0, 9);
    record_type[i] = rng.Bernoulli(0.85) ? 0 : 1;
    reg_class[i] = (z * 7 + rng.Zipf(75, 1.4)) % 75;
    // Most registrations are in-state (code 0), the tail is Zipf over the rest.
    state[i] = rng.Bernoulli(0.9) ? 0 : 1 + rng.Zipf(88, 1.2);
    county[i] = (state[i] == 0) ? rng.Zipf(62, 1.3) : rng.UniformInt(0, 61);
    body_type[i] = (reg_class[i] / 2 + rng.Zipf(60, 1.5)) % 60;
    fuel_type[i] = (body_type[i] % 3 == 0) ? rng.Zipf(9, 2.0) : rng.Zipf(9, 1.2);
    color[i] = (body_type[i] + rng.Zipf(225, 1.3)) % 225;
    // Registration validity date in days; newer vehicles dominate.
    valid_date[i] = Clamp(2100 - rng.Zipf(2101, 1.1), 0, 2100);
    scofflaw[i] = rng.Bernoulli(0.02) ? 1 : 0;
    suspension[i] = (scofflaw[i] == 1 && rng.Bernoulli(0.5)) || rng.Bernoulli(0.03)
                        ? 1
                        : 0;
    revocation[i] = (suspension[i] == 1 && rng.Bernoulli(0.3)) ? 1 : 0;
  }

  Table table("dmv");
  SAM_CHECK_OK(table.AddColumn(IntColumn("record_type", record_type)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("registration_class", reg_class)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("state", state)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("county", county)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("body_type", body_type)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("fuel_type", fuel_type)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("color", color)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("valid_date", valid_date)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("scofflaw", scofflaw)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("suspension", suspension)));
  SAM_CHECK_OK(table.AddColumn(IntColumn("revocation", revocation)));

  Database db;
  SAM_CHECK_OK(db.AddTable(std::move(table)));
  return db;
}

namespace {

/// Specification of one IMDB-like child relation.
struct ChildSpec {
  const char* name;
  const char* content_column;
  int64_t domain;         ///< Content-column domain size.
  double zipf_s;          ///< Content skew.
  double p_zero;          ///< Probability a title has no rows here.
  int64_t max_fanout;     ///< Fanout = 1 + Zipf(max_fanout, fanout_s).
  double fanout_s;
};

}  // namespace

Database MakeImdbLike(size_t title_rows, uint64_t seed) {
  Rng rng(seed);
  const size_t n = title_rows;

  std::vector<int64_t> title_id(n), kind_id(n), production_year(n);
  for (size_t i = 0; i < n; ++i) {
    title_id[i] = static_cast<int64_t>(i);
    kind_id[i] = rng.Zipf(7, 1.5);
    production_year[i] = 2025 - rng.Zipf(126, 1.2);
  }

  Database db;
  {
    Table title("title");
    SAM_CHECK_OK(title.AddColumn(IntColumn("id", title_id)));
    SAM_CHECK_OK(title.AddColumn(IntColumn("kind_id", kind_id)));
    SAM_CHECK_OK(title.AddColumn(IntColumn("production_year", production_year)));
    SAM_CHECK_OK(title.SetPrimaryKey("id"));
    SAM_CHECK_OK(db.AddTable(std::move(title)));
  }

  const ChildSpec specs[] = {
      {"movie_companies", "company_type_id", 4, 1.4, 0.20, 8, 1.6},
      {"cast_info", "role_id", 11, 1.3, 0.10, 20, 1.4},
      {"movie_info", "info_type_id", 20, 1.2, 0.15, 15, 1.5},
      {"movie_info_idx", "info_type_id", 5, 1.6, 0.40, 4, 1.8},
      {"movie_keyword", "keyword_id", 60, 1.2, 0.30, 25, 1.3},
  };

  // Per-title popularity: popular titles have more rows in *every* child
  // relation and are less likely to be absent from any of them. This
  // cross-child fanout correlation mirrors real IMDB (blockbusters have many
  // cast entries AND many keywords) and is exactly what the view-based join
  // key assignment cannot capture (Figure 4 / §5.5).
  std::vector<double> popularity(n);
  for (size_t i = 0; i < n; ++i) {
    double pop = std::exp(rng.Normal(0.0, 0.5));
    // Recent titles trend more popular, giving content-visible signal.
    if (production_year[i] >= 2000) pop *= 1.6;
    popularity[i] = pop;
  }

  for (const auto& spec : specs) {
    std::vector<int64_t> movie_id;
    std::vector<int64_t> content;
    for (size_t i = 0; i < n; ++i) {
      const double p_zero =
          std::min(0.9, std::max(0.03, spec.p_zero * 1.5 / (0.5 + popularity[i])));
      if (rng.Bernoulli(p_zero)) continue;  // Title absent -> FOJ NULL.
      const int64_t base_fanout = 1 + rng.Zipf(spec.max_fanout, spec.fanout_s);
      const int64_t fanout = Clamp(
          static_cast<int64_t>(std::llround(popularity[i] * base_fanout)), 1,
          spec.max_fanout);
      for (int64_t k = 0; k < fanout; ++k) {
        movie_id.push_back(title_id[i]);
        // Content correlates with the title's kind and year so join queries
        // carry cross-relation correlation signal.
        const int64_t base = (kind_id[i] * 3 + (production_year[i] / 40)) %
                             spec.domain;
        content.push_back((base + rng.Zipf(spec.domain, spec.zipf_s)) %
                          spec.domain);
      }
    }
    Table child(spec.name);
    SAM_CHECK_OK(child.AddColumn(IntColumn("movie_id", movie_id)));
    SAM_CHECK_OK(child.AddColumn(IntColumn(spec.content_column, content)));
    SAM_CHECK_OK(child.AddForeignKey(ForeignKey{"movie_id", "title", "id"}));
    SAM_CHECK_OK(db.AddTable(std::move(child)));
  }
  SAM_CHECK_OK(db.ValidateIntegrity());
  return db;
}

Database MakeChainDatabase() {
  Database db;
  {
    Table a("A");
    SAM_CHECK_OK(a.AddColumn(IntColumn("x", {1, 2})));
    SAM_CHECK_OK(a.AddColumn(StringColumn("a", {"m", "n"})));
    SAM_CHECK_OK(a.SetPrimaryKey("x"));
    SAM_CHECK_OK(db.AddTable(std::move(a)));
  }
  {
    Table b("B");
    SAM_CHECK_OK(b.AddColumn(IntColumn("y", {1, 2, 3})));
    SAM_CHECK_OK(b.AddColumn(IntColumn("x", {1, 1, 2})));
    SAM_CHECK_OK(b.AddColumn(StringColumn("b", {"p", "q", "p"})));
    SAM_CHECK_OK(b.SetPrimaryKey("y"));
    SAM_CHECK_OK(b.AddForeignKey(ForeignKey{"x", "A", "x"}));
    SAM_CHECK_OK(db.AddTable(std::move(b)));
  }
  {
    Table c("C");
    SAM_CHECK_OK(c.AddColumn(IntColumn("y", {1, 1, 3})));
    SAM_CHECK_OK(c.AddColumn(StringColumn("c", {"u", "v", "u"})));
    SAM_CHECK_OK(c.AddForeignKey(ForeignKey{"y", "B", "y"}));
    SAM_CHECK_OK(db.AddTable(std::move(c)));
  }
  SAM_CHECK_OK(db.ValidateIntegrity());
  return db;
}

Database MakeFigure3Database() {
  Database db;
  {
    Table a("A");
    SAM_CHECK_OK(a.AddColumn(IntColumn("x", {1, 2, 3, 4})));
    SAM_CHECK_OK(a.AddColumn(StringColumn("a", {"m", "m", "n", "n"})));
    SAM_CHECK_OK(a.SetPrimaryKey("x"));
    SAM_CHECK_OK(db.AddTable(std::move(a)));
  }
  {
    Table b("B");
    SAM_CHECK_OK(b.AddColumn(IntColumn("x", {1, 2, 2})));
    SAM_CHECK_OK(b.AddColumn(StringColumn("b", {"a", "b", "c"})));
    SAM_CHECK_OK(b.AddForeignKey(ForeignKey{"x", "A", "x"}));
    SAM_CHECK_OK(db.AddTable(std::move(b)));
  }
  {
    Table c("C");
    SAM_CHECK_OK(c.AddColumn(IntColumn("x", {1, 1, 2, 2})));
    SAM_CHECK_OK(c.AddColumn(StringColumn("c", {"i", "j", "i", "j"})));
    SAM_CHECK_OK(c.AddForeignKey(ForeignKey{"x", "A", "x"}));
    SAM_CHECK_OK(db.AddTable(std::move(c)));
  }
  SAM_CHECK_OK(db.ValidateIntegrity());
  return db;
}

}  // namespace sam
