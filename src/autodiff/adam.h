#pragma once

#include <vector>

#include "autodiff/tensor.h"
#include "common/result.h"

namespace sam::ad {

/// \brief Adam optimiser over a fixed set of parameter tensors.
///
/// Standard bias-corrected Adam (Kingma & Ba). The DPS trainer performs one
/// `Step()` per query mini-batch.
class AdamOptimizer {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    /// Optional global gradient-norm clip (0 disables). DPS losses can spike
    /// on rare queries with tiny true cardinalities.
    double clip_norm = 5.0;
  };

  AdamOptimizer(std::vector<Tensor> params, Options options);

  /// Applies one update from the accumulated gradients.
  void Step();

  /// Clears every parameter's gradient buffer.
  void ZeroGrad();

  const Options& options() const { return options_; }
  void set_lr(double lr) { options_.lr = lr; }

  // --- Checkpoint support ----------------------------------------------------

  /// Number of `Step()` calls applied so far (drives bias correction).
  int64_t step_count() const { return t_; }

  /// First/second-moment accumulators, one matrix per parameter.
  const std::vector<Matrix>& moments_m() const { return m_; }
  const std::vector<Matrix>& moments_v() const { return v_; }

  /// Restores optimiser state captured from another instance over the same
  /// parameter set. Fails with `InvalidArgument` on count/shape mismatch
  /// without modifying any state.
  Status RestoreState(int64_t step_count, std::vector<Matrix> m,
                      std::vector<Matrix> v);

 private:
  std::vector<Tensor> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  Options options_;
  int64_t t_ = 0;
};

}  // namespace sam::ad
