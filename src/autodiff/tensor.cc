#include "autodiff/tensor.h"

#include <unordered_set>

#include "common/logging.h"

namespace sam::ad {

namespace {
thread_local bool g_no_grad = false;
}  // namespace

NoGradGuard::NoGradGuard() : prev_(g_no_grad) { g_no_grad = true; }
NoGradGuard::~NoGradGuard() { g_no_grad = prev_; }
bool NoGradGuard::Active() { return g_no_grad; }

Tensor Tensor::Constant(Matrix value) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Tensor(std::move(node));
}

Tensor Tensor::Param(Matrix value) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->op_name = "param";
  return Tensor(std::move(node));
}

Tensor Tensor::Zeros(size_t rows, size_t cols) { return Constant(Matrix(rows, cols)); }

void Tensor::Backward() const {
  SAM_CHECK(node_ != nullptr) << "Backward on undefined tensor";
  SAM_CHECK(node_->rows() == 1 && node_->cols() == 1)
      << "Backward requires a scalar loss, got " << node_->rows() << "x"
      << node_->cols();

  // Topological order via iterative post-order DFS.
  std::vector<TensorNode*> order;
  std::unordered_set<TensorNode*> visited;
  std::vector<std::pair<TensorNode*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->parents.size()) {
      TensorNode* p = n->parents[idx].get();
      ++idx;
      if (p->requires_grad && visited.insert(p).second) {
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }

  node_->EnsureGrad();
  node_->grad(0, 0) += 1.0;

  // `order` is post-order (children before parents in graph direction), so
  // iterating in reverse visits each node after all of its consumers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

}  // namespace sam::ad
