#pragma once

#include "autodiff/tensor.h"
#include "common/random.h"

namespace sam::ad {

/// Elementwise sum of two same-shape tensors.
Tensor Add(const Tensor& a, const Tensor& b);

/// Adds a 1 x D row vector `bias` to every row of the B x D tensor `a`.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Elementwise difference a - b.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) product.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Multiplies every element by scalar `s`.
Tensor Scale(const Tensor& a, double s);

/// Matrix product a (B x K) * b (K x D).
Tensor Matmul(const Tensor& a, const Tensor& b);

/// Rectified linear unit.
Tensor Relu(const Tensor& a);

/// Fused relu(a + bias) for a B x D tensor `a` and 1 x D row vector `bias`.
/// One pass over the data instead of the AddRowBroadcast + Relu pair; the
/// forward runs through the SIMD kernel layer.
Tensor BiasRelu(const Tensor& a, const Tensor& bias);

/// Fused relu(a + bias) + skip, the MADE residual-hidden-layer body. `a` and
/// `skip` are B x D, `bias` is 1 x D.
Tensor BiasReluSkip(const Tensor& a, const Tensor& bias, const Tensor& skip);

/// Row-wise softmax over the full width of `a`.
Tensor Softmax(const Tensor& a);

/// Natural log of max(a, eps); the clamp keeps DPS stable when a predicted
/// in-range probability underflows.
Tensor LogEps(const Tensor& a, double eps = 1e-30);

/// Row-wise sum: B x D -> B x 1.
Tensor RowSum(const Tensor& a);

/// Sum of all elements -> 1 x 1.
Tensor SumAll(const Tensor& a);

/// Mean of all elements -> 1 x 1.
Tensor MeanAll(const Tensor& a);

/// Columns [begin, end) of `a`.
Tensor SliceColumns(const Tensor& a, size_t begin, size_t end);

/// Rows [begin, end) of `a`.
Tensor SliceRows(const Tensor& a, size_t begin, size_t end);

/// Places the B x D block `a` at column `offset` of a B x `total` tensor of
/// zeros. The building block for progressively composing MADE inputs.
Tensor PadColumns(const Tensor& a, size_t offset, size_t total);

/// \brief Straight-through Gumbel-Softmax sample (one sample per row).
///
/// `logits` are *masked* log-probabilities (out-of-range entries at a large
/// negative value). Forward emits the hard one-hot of
/// `argmax(logits + Gumbel noise)`; backward routes gradients through the
/// tempered softmax `y_soft = softmax((logits + g) / tau)` — the
/// straight-through estimator used by the paper's Differentiable Progressive
/// Sampling (§4.1).
Tensor GumbelSoftmaxST(const Tensor& logits, double tau, Rng* rng);

/// Elementwise reciprocal 1 / max(a, eps).
Tensor Reciprocal(const Tensor& a, double eps = 1e-30);

}  // namespace sam::ad
