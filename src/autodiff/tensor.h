#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace sam::ad {

/// \brief Node in the reverse-mode autodiff tape.
///
/// Every tensor in this engine is a dense 2-D matrix of doubles
/// (`batch x features`), which is all the MADE architecture and the DPS
/// training loop require. Nodes own their value, an optional gradient buffer,
/// and a closure that accumulates gradients into their parents.
struct TensorNode {
  Matrix value;
  Matrix grad;
  bool requires_grad = false;
  /// Parents in the computation graph (empty for leaves).
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Accumulates this node's gradient into its parents' gradients.
  std::function<void(TensorNode&)> backward_fn;
  /// Debug label for graph dumps and error messages.
  std::string op_name = "leaf";

  size_t rows() const { return value.rows(); }
  size_t cols() const { return value.cols(); }

  void EnsureGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = Matrix(value.rows(), value.cols());
    }
  }
};

/// \brief Handle to a `TensorNode`; cheap to copy.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorNode> node) : node_(std::move(node)) {}

  /// \brief Leaf tensor that does not require gradients.
  static Tensor Constant(Matrix value);

  /// \brief Trainable leaf (model parameter).
  static Tensor Param(Matrix value);

  /// \brief Constant of zeros.
  static Tensor Zeros(size_t rows, size_t cols);

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node_->rows(); }
  size_t cols() const { return node_->cols(); }

  const Matrix& value() const { return node_->value; }
  Matrix& mutable_value() { return node_->value; }
  const Matrix& grad() const { return node_->grad; }

  bool requires_grad() const { return node_->requires_grad; }

  std::shared_ptr<TensorNode>& node() { return node_; }
  const std::shared_ptr<TensorNode>& node() const { return node_; }

  /// \brief Runs reverse-mode accumulation from this (scalar, 1x1) tensor.
  ///
  /// Gradients of all reachable `requires_grad` nodes are accumulated into
  /// their `grad` buffers (callers zero them between steps via
  /// `AdamOptimizer::ZeroGrad` or `ZeroGrad()` on the leaves).
  void Backward() const;

  /// \brief Clears this tensor's gradient buffer.
  void ZeroGrad() { node_->grad = Matrix(rows(), cols()); }

 private:
  std::shared_ptr<TensorNode> node_;
};

/// \brief RAII guard that disables tape construction.
///
/// While a guard is alive, ops produce value-only tensors with no parents,
/// which makes inference and generation passes allocation-light.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when some guard is active on this thread.
  static bool Active();

 private:
  bool prev_;
};

}  // namespace sam::ad
