#include "autodiff/adam.h"

#include <cmath>

#include "common/logging.h"

namespace sam::ad {

AdamOptimizer::AdamOptimizer(std::vector<Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    SAM_CHECK(p.requires_grad()) << "AdamOptimizer given a non-trainable tensor";
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void AdamOptimizer::Step() {
  ++t_;
  // Optional global norm clipping across all parameters.
  if (options_.clip_norm > 0.0) {
    double sq = 0.0;
    for (auto& p : params_) {
      if (p.grad().size() != p.value().size()) continue;
      const double* g = p.grad().data();
      for (size_t i = 0; i < p.grad().size(); ++i) sq += g[i] * g[i];
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) {
      const double scale = options_.clip_norm / norm;
      for (auto& p : params_) {
        if (p.grad().size() != p.value().size()) continue;
        double* g = p.node()->grad.data();
        for (size_t i = 0; i < p.grad().size(); ++i) g[i] *= scale;
      }
    }
  }

  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    if (p.grad().size() != p.value().size()) continue;  // Never touched.
    double* w = p.mutable_value().data();
    const double* g = p.grad().data();
    double* m = m_[k].data();
    double* v = v_[k].data();
    for (size_t i = 0; i < p.value().size(); ++i) {
      m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * g[i];
      v[i] = options_.beta2 * v[i] + (1.0 - options_.beta2) * g[i] * g[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Status AdamOptimizer::RestoreState(int64_t step_count, std::vector<Matrix> m,
                                   std::vector<Matrix> v) {
  if (step_count < 0) {
    return Status::InvalidArgument("Adam step count must be non-negative");
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        "Adam state has " + std::to_string(m.size()) + "/" +
        std::to_string(v.size()) + " moment matrices, optimiser has " +
        std::to_string(params_.size()) + " parameters");
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    if (m[k].rows() != params_[k].rows() || m[k].cols() != params_[k].cols() ||
        v[k].rows() != params_[k].rows() || v[k].cols() != params_[k].cols()) {
      return Status::InvalidArgument("Adam moment shape mismatch at parameter " +
                                     std::to_string(k));
    }
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

}  // namespace sam::ad
