#include "autodiff/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace sam::ad {

namespace {

/// Creates the result node for an op, wiring parents and the backward
/// closure unless a NoGradGuard is active or no parent needs gradients.
Tensor MakeOp(Matrix value, std::vector<Tensor> parents,
              std::function<void(TensorNode&)> backward, const char* name) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->op_name = name;
  bool needs = false;
  for (const auto& p : parents) needs = needs || p.requires_grad();
  if (needs && !NoGradGuard::Active()) {
    node->requires_grad = true;
    node->parents.reserve(parents.size());
    for (auto& p : parents) node->parents.push_back(p.node());
    node->backward_fn = std::move(backward);
  }
  return Tensor(std::move(node));
}

void AccumulateInto(TensorNode* parent, const Matrix& g) {
  if (!parent->requires_grad) return;
  parent->EnsureGrad();
  SAM_CHECK_EQ(parent->grad.size(), g.size());
  double* dst = parent->grad.data();
  const double* src = g.data();
  for (size_t i = 0; i < g.size(); ++i) dst[i] += src[i];
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  SAM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix v = a.value();
  const double* bv = b.value().data();
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] += bv[i];
  return MakeOp(std::move(v), {a, b},
                [](TensorNode& n) {
                  AccumulateInto(n.parents[0].get(), n.grad);
                  AccumulateInto(n.parents[1].get(), n.grad);
                },
                "add");
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  SAM_CHECK_EQ(bias.rows(), 1u);
  SAM_CHECK_EQ(a.cols(), bias.cols());
  Matrix v = a.value();
  const double* bv = bias.value().data();
  for (size_t r = 0; r < v.rows(); ++r) {
    double* row = v.row(r);
    for (size_t c = 0; c < v.cols(); ++c) row[c] += bv[c];
  }
  return MakeOp(std::move(v), {a, bias},
                [](TensorNode& n) {
                  AccumulateInto(n.parents[0].get(), n.grad);
                  TensorNode* bias_node = n.parents[1].get();
                  if (bias_node->requires_grad) {
                    bias_node->EnsureGrad();
                    double* bg = bias_node->grad.data();
                    for (size_t r = 0; r < n.grad.rows(); ++r) {
                      const double* row = n.grad.row(r);
                      for (size_t c = 0; c < n.grad.cols(); ++c) bg[c] += row[c];
                    }
                  }
                },
                "add_row_broadcast");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  SAM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix v = a.value();
  const double* bv = b.value().data();
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] -= bv[i];
  return MakeOp(std::move(v), {a, b},
                [](TensorNode& n) {
                  AccumulateInto(n.parents[0].get(), n.grad);
                  TensorNode* b_node = n.parents[1].get();
                  if (b_node->requires_grad) {
                    b_node->EnsureGrad();
                    double* dst = b_node->grad.data();
                    const double* src = n.grad.data();
                    for (size_t i = 0; i < n.grad.size(); ++i) dst[i] -= src[i];
                  }
                },
                "sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  SAM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix v = a.value();
  const double* bv = b.value().data();
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] *= bv[i];
  return MakeOp(std::move(v), {a, b},
                [](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  TensorNode* bn = n.parents[1].get();
                  if (an->requires_grad) {
                    an->EnsureGrad();
                    double* dst = an->grad.data();
                    const double* g = n.grad.data();
                    const double* bv2 = bn->value.data();
                    for (size_t i = 0; i < n.grad.size(); ++i) dst[i] += g[i] * bv2[i];
                  }
                  if (bn->requires_grad) {
                    bn->EnsureGrad();
                    double* dst = bn->grad.data();
                    const double* g = n.grad.data();
                    const double* av = an->value.data();
                    for (size_t i = 0; i < n.grad.size(); ++i) dst[i] += g[i] * av[i];
                  }
                },
                "mul");
}

Tensor Scale(const Tensor& a, double s) {
  Matrix v = a.value();
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] *= s;
  return MakeOp(std::move(v), {a},
                [s](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  double* dst = an->grad.data();
                  const double* g = n.grad.data();
                  for (size_t i = 0; i < n.grad.size(); ++i) dst[i] += g[i] * s;
                },
                "scale");
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  Matrix v = Matrix::Multiply(a.value(), b.value());
  return MakeOp(std::move(v), {a, b},
                [](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  TensorNode* bn = n.parents[1].get();
                  if (an->requires_grad) {
                    // dA = dC * B^T
                    Matrix da = Matrix::MultiplyTranspose(n.grad, bn->value);
                    AccumulateInto(an, da);
                  }
                  if (bn->requires_grad) {
                    // dB = A^T * dC
                    Matrix db = Matrix::TransposeMultiply(an->value, n.grad);
                    AccumulateInto(bn, db);
                  }
                },
                "matmul");
}

Tensor Relu(const Tensor& a) {
  Matrix v = a.value();
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] = std::max(0.0, v.data()[i]);
  return MakeOp(std::move(v), {a},
                [](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  double* dst = an->grad.data();
                  const double* g = n.grad.data();
                  const double* out = n.value.data();
                  for (size_t i = 0; i < n.grad.size(); ++i) {
                    if (out[i] > 0.0) dst[i] += g[i];
                  }
                },
                "relu");
}

namespace {

// Shared backward for the fused bias+relu ops. The relu mask is recomputed
// from the parents' stored values as (a + bias) > 0 — exact, because the
// forward applied relu to exactly that sum — so the forward never has to
// stash pre-activations. `skip_node` is null for the skip-less variant.
void BiasReluBackward(TensorNode& n) {
  TensorNode* an = n.parents[0].get();
  TensorNode* bn = n.parents[1].get();
  TensorNode* sn = n.parents.size() > 2 ? n.parents[2].get() : nullptr;
  const size_t rows = n.grad.rows();
  const size_t cols = n.grad.cols();
  if (an->requires_grad) an->EnsureGrad();
  if (bn->requires_grad) bn->EnsureGrad();
  const double* bias = bn->value.data();
  for (size_t r = 0; r < rows; ++r) {
    const double* g = n.grad.row(r);
    const double* av = an->value.row(r);
    double* ag = an->requires_grad ? an->grad.row(r) : nullptr;
    double* bg = bn->requires_grad ? bn->grad.data() : nullptr;
    for (size_t c = 0; c < cols; ++c) {
      if (av[c] + bias[c] > 0.0) {
        if (ag != nullptr) ag[c] += g[c];
        if (bg != nullptr) bg[c] += g[c];
      }
    }
  }
  // The skip branch bypasses the relu, so it sees the full gradient.
  if (sn != nullptr && sn->requires_grad) AccumulateInto(sn, n.grad);
}

}  // namespace

Tensor BiasRelu(const Tensor& a, const Tensor& bias) {
  SAM_CHECK_EQ(bias.rows(), 1u);
  SAM_CHECK_EQ(a.cols(), bias.cols());
  Matrix v = a.value();
  kernels::Active().bias_relu_skip(v.data(), bias.value().data(),
                                   /*skip=*/nullptr, v.rows(), v.cols());
  return MakeOp(std::move(v), {a, bias}, BiasReluBackward, "bias_relu");
}

Tensor BiasReluSkip(const Tensor& a, const Tensor& bias, const Tensor& skip) {
  SAM_CHECK_EQ(bias.rows(), 1u);
  SAM_CHECK_EQ(a.cols(), bias.cols());
  SAM_CHECK(a.rows() == skip.rows() && a.cols() == skip.cols());
  Matrix v = a.value();
  kernels::Active().bias_relu_skip(v.data(), bias.value().data(),
                                   skip.value().data(), v.rows(), v.cols());
  return MakeOp(std::move(v), {a, bias, skip}, BiasReluBackward,
                "bias_relu_skip");
}

Tensor Softmax(const Tensor& a) {
  Matrix v = a.value();
  for (size_t r = 0; r < v.rows(); ++r) {
    double* row = v.row(r);
    double mx = row[0];
    for (size_t c = 1; c < v.cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (size_t c = 0; c < v.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const double inv = 1.0 / sum;
    for (size_t c = 0; c < v.cols(); ++c) row[c] *= inv;
  }
  return MakeOp(std::move(v), {a},
                [](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  // dx = y * (dy - sum(dy * y)) row-wise.
                  for (size_t r = 0; r < n.grad.rows(); ++r) {
                    const double* y = n.value.row(r);
                    const double* dy = n.grad.row(r);
                    double dot = 0.0;
                    for (size_t c = 0; c < n.grad.cols(); ++c) dot += dy[c] * y[c];
                    double* dx = an->grad.row(r);
                    for (size_t c = 0; c < n.grad.cols(); ++c) {
                      dx[c] += y[c] * (dy[c] - dot);
                    }
                  }
                },
                "softmax");
}

Tensor LogEps(const Tensor& a, double eps) {
  Matrix v = a.value();
  for (size_t i = 0; i < v.size(); ++i) v.data()[i] = std::log(std::max(v.data()[i], eps));
  return MakeOp(std::move(v), {a},
                [eps](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  double* dst = an->grad.data();
                  const double* g = n.grad.data();
                  const double* x = an->value.data();
                  for (size_t i = 0; i < n.grad.size(); ++i) {
                    dst[i] += g[i] / std::max(x[i], eps);
                  }
                },
                "log_eps");
}

Tensor RowSum(const Tensor& a) {
  Matrix v(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.value().row(r);
    double acc = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) acc += row[c];
    v(r, 0) = acc;
  }
  return MakeOp(std::move(v), {a},
                [](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  for (size_t r = 0; r < an->grad.rows(); ++r) {
                    const double g = n.grad(r, 0);
                    double* dst = an->grad.row(r);
                    for (size_t c = 0; c < an->grad.cols(); ++c) dst[c] += g;
                  }
                },
                "row_sum");
}

Tensor SumAll(const Tensor& a) {
  Matrix v(1, 1);
  double acc = 0.0;
  for (size_t i = 0; i < a.value().size(); ++i) acc += a.value().data()[i];
  v(0, 0) = acc;
  return MakeOp(std::move(v), {a},
                [](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  const double g = n.grad(0, 0);
                  double* dst = an->grad.data();
                  for (size_t i = 0; i < an->grad.size(); ++i) dst[i] += g;
                },
                "sum_all");
}

Tensor MeanAll(const Tensor& a) {
  const double inv = 1.0 / static_cast<double>(a.value().size());
  return Scale(SumAll(a), inv);
}

Tensor SliceColumns(const Tensor& a, size_t begin, size_t end) {
  SAM_CHECK(begin <= end && end <= a.cols());
  Matrix v(a.rows(), end - begin);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* src = a.value().row(r) + begin;
    std::copy(src, src + (end - begin), v.row(r));
  }
  return MakeOp(std::move(v), {a},
                [begin, end](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  for (size_t r = 0; r < n.grad.rows(); ++r) {
                    const double* g = n.grad.row(r);
                    double* dst = an->grad.row(r) + begin;
                    for (size_t c = 0; c < end - begin; ++c) dst[c] += g[c];
                  }
                },
                "slice_cols");
}

Tensor SliceRows(const Tensor& a, size_t begin, size_t end) {
  SAM_CHECK(begin <= end && end <= a.rows());
  Matrix v(end - begin, a.cols());
  for (size_t r = begin; r < end; ++r) {
    const double* src = a.value().row(r);
    std::copy(src, src + a.cols(), v.row(r - begin));
  }
  return MakeOp(std::move(v), {a},
                [begin, end](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  for (size_t r = begin; r < end; ++r) {
                    const double* g = n.grad.row(r - begin);
                    double* dst = an->grad.row(r);
                    for (size_t c = 0; c < n.grad.cols(); ++c) dst[c] += g[c];
                  }
                },
                "slice_rows");
}

Tensor PadColumns(const Tensor& a, size_t offset, size_t total) {
  SAM_CHECK_LE(offset + a.cols(), total);
  Matrix v(a.rows(), total);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* src = a.value().row(r);
    std::copy(src, src + a.cols(), v.row(r) + offset);
  }
  const size_t width = a.cols();
  return MakeOp(std::move(v), {a},
                [offset, width](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  for (size_t r = 0; r < n.grad.rows(); ++r) {
                    const double* g = n.grad.row(r) + offset;
                    double* dst = an->grad.row(r);
                    for (size_t c = 0; c < width; ++c) dst[c] += g[c];
                  }
                },
                "pad_cols");
}

Tensor GumbelSoftmaxST(const Tensor& logits, double tau, Rng* rng) {
  const size_t b = logits.rows();
  const size_t d = logits.cols();
  // Compute perturbed logits once; derive both the soft distribution (kept
  // for the backward pass) and the hard one-hot forward value from it.
  Matrix soft(b, d);
  Matrix hard(b, d);
  for (size_t r = 0; r < b; ++r) {
    const double* lg = logits.value().row(r);
    double* srow = soft.row(r);
    double mx = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < d; ++c) {
      srow[c] = (lg[c] + rng->Gumbel()) / tau;
      mx = std::max(mx, srow[c]);
    }
    size_t argmax = 0;
    double best = -std::numeric_limits<double>::infinity();
    double sum = 0.0;
    for (size_t c = 0; c < d; ++c) {
      if (srow[c] > best) {
        best = srow[c];
        argmax = c;
      }
      srow[c] = std::exp(srow[c] - mx);
      sum += srow[c];
    }
    const double inv = 1.0 / sum;
    for (size_t c = 0; c < d; ++c) srow[c] *= inv;
    hard(r, argmax) = 1.0;
  }
  const double inv_tau = 1.0 / tau;
  auto soft_holder = std::make_shared<Matrix>(std::move(soft));
  return MakeOp(std::move(hard), {logits},
                [soft_holder, inv_tau](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  // Straight-through: treat the output as y_soft for the
                  // backward pass. d y_soft/d logits is the tempered softmax
                  // Jacobian: y/tau * (dy - sum(dy*y)).
                  const Matrix& y = *soft_holder;
                  for (size_t r = 0; r < n.grad.rows(); ++r) {
                    const double* yr = y.row(r);
                    const double* dy = n.grad.row(r);
                    double dot = 0.0;
                    for (size_t c = 0; c < n.grad.cols(); ++c) dot += dy[c] * yr[c];
                    double* dx = an->grad.row(r);
                    for (size_t c = 0; c < n.grad.cols(); ++c) {
                      dx[c] += inv_tau * yr[c] * (dy[c] - dot);
                    }
                  }
                },
                "gumbel_softmax_st");
}

Tensor Reciprocal(const Tensor& a, double eps) {
  Matrix v = a.value();
  for (size_t i = 0; i < v.size(); ++i) {
    v.data()[i] = 1.0 / std::max(v.data()[i], eps);
  }
  return MakeOp(std::move(v), {a},
                [eps](TensorNode& n) {
                  TensorNode* an = n.parents[0].get();
                  if (!an->requires_grad) return;
                  an->EnsureGrad();
                  double* dst = an->grad.data();
                  const double* g = n.grad.data();
                  const double* x = an->value.data();
                  for (size_t i = 0; i < n.grad.size(); ++i) {
                    const double xv = std::max(x[i], eps);
                    dst[i] -= g[i] / (xv * xv);
                  }
                },
                "reciprocal");
}

}  // namespace sam::ad
