#!/usr/bin/env bash
# Builds the project, runs the full test suite, every experiment harness and
# the examples, recording test_output.txt and bench_output.txt at the repo
# root (the artifacts EXPERIMENTS.md refers to).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "### $b"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

for e in build/examples/*; do
  [ -x "$e" ] || continue
  echo "--- $e"
  "$e"
done
