// DBMS benchmarking scenario (paper §1, first use case): before a customer
// migrates, the provider wants to compare engine configurations on a
// database *like* the customer's. This example trains SAM once, persists the
// model to disk, reloads it (as a provider service would), generates two
// candidate synthetic databases at different scale factors, and compares
// their query latency profiles against the original — the performance-
// deviation methodology of §5.4. It also demonstrates SAM's progressive-
// sampling cardinality estimator, which is useful for sanity-checking the
// learned distribution before committing to a generation run.
//
// Run:  ./build/examples/benchmark_dbms_census

#include <cstdio>

#include "ar/estimator.h"
#include "common/logging.h"
#include "datasets/datasets.h"
#include "engine/executor.h"
#include "metrics/metrics.h"
#include "sam/sam_model.h"
#include "workload/generator.h"
#include "workload/io.h"

int main() {
  using namespace sam;

  std::printf("[1/5] Customer database + query log...\n");
  Database hidden = MakeDmvLike(/*num_rows=*/12000, /*seed=*/31);
  auto exec = Executor::Create(&hidden).MoveValue();
  SingleRelationWorkloadOptions wopts;
  wopts.num_queries = 1500;
  wopts.seed = 11;
  Workload log =
      GenerateSingleRelationWorkload(hidden, "dmv", *exec, wopts).MoveValue();
  // Query logs are shipped between services as files.
  SAM_CHECK_OK(SaveWorkload(log, "/tmp/sam_dmv_workload.txt"));
  Workload loaded = LoadWorkload("/tmp/sam_dmv_workload.txt").MoveValue();
  std::printf("      %zu queries round-tripped through /tmp/sam_dmv_workload.txt\n",
              loaded.size());

  std::printf("[2/5] Training SAM and persisting the model...\n");
  SchemaHints hints;
  hints.numeric_columns = {"dmv.valid_date"};
  hints.numeric_bounds["dmv.valid_date"] = {0, 2100};
  SamOptions options;
  options.training.epochs = 8;
  auto trained =
      SamModel::Train(hidden, loaded, hints, /*foj_size=*/12000, options)
          .MoveValue();
  SAM_CHECK_OK(trained->model()->Save("/tmp/sam_dmv_model.bin"));

  std::printf("[3/5] Reloading the model in a fresh process (simulated)...\n");
  auto service =
      SamModel::Create(hidden, loaded, hints, /*foj_size=*/12000, options)
          .MoveValue();
  SAM_CHECK_OK(service->model()->Load("/tmp/sam_dmv_model.bin"));
  service->model()->SyncSamplerWeights();

  // Before generating, sanity-check the learned distribution with the
  // progressive-sampling estimator on a few held-out constraints.
  std::printf("[4/5] Spot-checking learned cardinalities:\n");
  ProgressiveEstimator estimator(service->model(), /*paths=*/400);
  for (size_t i = 0; i < 5; ++i) {
    const Query& q = loaded[i * 97 % loaded.size()];
    const double est = estimator.EstimateCardinality(q).MoveValue();
    std::printf("      est=%10.0f true=%10lld  q-error=%5.2f   %s\n", est,
                static_cast<long long>(q.cardinality),
                QError(est, static_cast<double>(q.cardinality)),
                q.ToString().c_str());
  }

  std::printf("[5/5] Generating the benchmark database and comparing latency...\n");
  Database synthetic = service->Generate().MoveValue();
  auto syn_exec = Executor::Create(&synthetic).MoveValue();

  SingleRelationWorkloadOptions topts;
  topts.num_queries = 60;
  topts.seed = 12;
  Workload bench_queries =
      GenerateSingleRelationWorkload(hidden, "dmv", *exec, topts).MoveValue();
  const MetricSummary dev =
      PerformanceDeviationMs(*exec, *syn_exec, bench_queries, 5).MoveValue();
  std::printf("      latency deviation vs original: median=%.3fms 90th=%.3fms\n",
              dev.median, dev.p90);
  const MetricSummary fid = QErrorOnDatabase(*syn_exec, bench_queries).MoveValue();
  std::printf("      unseen-query Q-Error:          median=%.2f 90th=%.2f\n",
              fid.median, fid.p90);
  std::printf("Done. The synthetic database is a drop-in benchmarking stand-in.\n");
  return 0;
}
