// Stress testing with a synthetic multi-relation database (paper §1, second
// use case): an engineer must load-test a service backed by a multi-relation
// database with strict access controls. The database itself cannot be copied
// into the test environment, but a workload of (query, cardinality) pairs
// can. SAM learns the full-outer-join distribution from the workload,
// generates all six relations with join keys assigned by Group-and-Merge,
// and the synthetic database is exported as CSVs ready to load.
//
// Run:  ./build/examples/stress_test_imdb

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "datasets/datasets.h"
#include "engine/executor.h"
#include "metrics/metrics.h"
#include "sam/sam_model.h"
#include "storage/csv.h"
#include "workload/generator.h"

int main() {
  using namespace sam;

  std::printf("[1/5] Building the production-like IMDB database (6 relations)...\n");
  Database prod = MakeImdbLike(/*title_rows=*/2500, /*seed=*/7);
  auto exec = Executor::Create(&prod).MoveValue();
  for (const auto& t : prod.tables()) {
    std::printf("      %-18s %8zu rows\n", t.name().c_str(), t.num_rows());
  }
  const int64_t foj = exec->FullOuterJoinSize();
  std::printf("      full outer join: %lld tuples\n",
              static_cast<long long>(foj));

  std::printf("[2/5] Collecting the query workload (joins of 0-2 relations)...\n");
  MultiRelationWorkloadOptions wopts;
  wopts.num_queries = 2500;
  wopts.seed = 99;
  Workload log = GenerateMultiRelationWorkload(prod, *exec, wopts).MoveValue();

  std::printf("[3/5] Training SAM on the full-outer-join distribution...\n");
  SchemaHints hints;
  hints.numeric_columns = {"title.production_year"};
  hints.numeric_bounds["title.production_year"] = {1900, 2025};

  SamOptions options;
  options.training.epochs = 8;
  options.foj_samples = 60000;
  Stopwatch watch;
  auto sam = SamModel::Train(prod, log, hints, foj, options).MoveValue();
  std::printf("      trained in %.1fs (%zu parameters)\n",
              watch.ElapsedSeconds(), sam->model()->num_parameters());

  std::printf("[4/5] Generating the synthetic database (IPW + scaling + "
              "Group-and-Merge)...\n");
  watch.Reset();
  Database synthetic = sam->Generate().MoveValue();
  std::printf("      generated in %.1fs\n", watch.ElapsedSeconds());
  SAM_CHECK_OK(synthetic.ValidateIntegrity());
  for (const auto& t : synthetic.tables()) {
    const std::string path = "/tmp/sam_stress_" + t.name() + ".csv";
    SAM_CHECK_OK(WriteCsv(t, path));
    std::printf("      %-18s %8zu rows -> %s\n", t.name().c_str(),
                t.num_rows(), path.c_str());
  }

  std::printf("[5/5] Checking the stress-test database is workload-faithful...\n");
  auto syn_exec = Executor::Create(&synthetic).MoveValue();
  Workload sample(log.begin(), log.begin() + 500);
  const MetricSummary fidelity = QErrorOnDatabase(*syn_exec, sample).MoveValue();
  std::printf("      input-query Q-Error: median=%.2f 90th=%.2f max=%.1f\n",
              fidelity.median, fidelity.p90, fidelity.max);

  // Latency profile comparison: the whole point of stress testing on a
  // synthetic database is that queries behave like production.
  JobLightWorkloadOptions jopts;
  jopts.num_queries = 40;
  Workload heavy = GenerateJobLightWorkload(prod, *exec, jopts).MoveValue();
  const MetricSummary dev =
      PerformanceDeviationMs(*exec, *syn_exec, heavy, 5).MoveValue();
  std::printf("      join-query latency deviation: median=%.3fms 90th=%.3fms\n",
              dev.median, dev.p90);
  std::printf("Done. Load the CSVs into your test cluster and fire away.\n");
  return 0;
}
