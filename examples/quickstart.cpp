// Quickstart: generate a synthetic single-relation database from a query
// workload with SAM.
//
// The scenario (paper §1): a cloud provider wants to benchmark DBMS choices
// for a customer database it cannot read. It *can* see the query log — each
// query plus its result cardinality. This example
//   1. plays the "customer side": builds a private Census-like database and
//      labels a query workload on it,
//   2. plays the "provider side": trains SAM from (query, cardinality) pairs
//      only, generates a synthetic database, and
//   3. measures how faithfully the synthetic database satisfies the input
//      constraints and how close it is to the hidden original.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "datasets/datasets.h"
#include "engine/executor.h"
#include "metrics/metrics.h"
#include "sam/sam_model.h"
#include "storage/csv.h"
#include "workload/generator.h"

int main() {
  using namespace sam;

  // ------------------------------------------------------------------
  // Customer side: a private database and its query log.
  // ------------------------------------------------------------------
  std::printf("[1/4] Building the (hidden) customer database...\n");
  Database hidden = MakeCensusLike(/*num_rows=*/8000, /*seed=*/2024);
  auto exec = Executor::Create(&hidden).MoveValue();

  SingleRelationWorkloadOptions wopts;
  wopts.num_queries = 2000;
  wopts.seed = 42;
  Workload log =
      GenerateSingleRelationWorkload(hidden, "census", *exec, wopts).MoveValue();
  std::printf("      %zu labelled queries, e.g.:\n      %s\n", log.size(),
              log.front().ToString().c_str());

  // ------------------------------------------------------------------
  // Provider side: only schema metadata + the query log cross the fence.
  // ------------------------------------------------------------------
  std::printf("[2/4] Training SAM from the query log (no data access)...\n");
  SchemaHints hints;
  hints.numeric_columns = {"census.age", "census.education_num",
                           "census.capital_gain", "census.capital_loss",
                           "census.hours_per_week"};
  hints.numeric_bounds["census.age"] = {17, 90};
  hints.numeric_bounds["census.education_num"] = {1, 16};
  hints.numeric_bounds["census.capital_gain"] = {0, 61000};
  hints.numeric_bounds["census.capital_loss"] = {0, 10000};
  hints.numeric_bounds["census.hours_per_week"] = {1, 99};

  SamOptions options;
  options.training.epochs = 8;
  auto sam = SamModel::Train(hidden, log, hints, /*foj_size=*/8000, options,
                             [](const DpsEpochStats& s) {
                               std::printf(
                                   "      epoch %zu: loss=%.4f (%.1fs)\n",
                                   s.epoch, s.mean_loss, s.seconds_elapsed);
                             })
                 .MoveValue();

  std::printf("[3/4] Generating the synthetic database (Algorithm 1)...\n");
  Database synthetic = sam->Generate().MoveValue();
  SAM_CHECK_OK(WriteCsv(*synthetic.FindTable("census"),
                        "/tmp/sam_quickstart_census.csv"));
  std::printf("      wrote /tmp/sam_quickstart_census.csv (%zu rows)\n",
              synthetic.FindTable("census")->num_rows());

  // ------------------------------------------------------------------
  // Evaluation: fidelity (A1) and closeness to the original (A2).
  // ------------------------------------------------------------------
  std::printf("[4/4] Evaluating...\n");
  auto syn_exec = Executor::Create(&synthetic).MoveValue();
  const MetricSummary fidelity = QErrorOnDatabase(*syn_exec, log).MoveValue();
  std::printf("      Q-Error of input constraints: median=%.2f 90th=%.2f\n",
              fidelity.median, fidelity.p90);

  wopts.seed = 4242;  // Unseen test queries.
  Workload test =
      GenerateSingleRelationWorkload(hidden, "census", *exec, wopts).MoveValue();
  test = RemoveDuplicateQueries(log, test);
  const MetricSummary recovery = QErrorOnDatabase(*syn_exec, test).MoveValue();
  std::printf("      Q-Error of unseen test queries: median=%.2f 90th=%.2f\n",
              recovery.median, recovery.p90);

  const Table* orig = hidden.FindTable("census");
  const double h = CrossEntropyBits(*orig, *synthetic.FindTable("census"),
                                    orig->ContentColumnNames())
                       .MoveValue();
  std::printf("      Cross entropy vs. original: %.2f bits\n", h);
  std::printf("Done.\n");
  return 0;
}
